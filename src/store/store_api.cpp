#include "store/store_api.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>

#include "store/result_store.h"
#include "store/segment.h"

namespace fs = std::filesystem;

namespace falvolt::store {

LayeredStore::LayeredStore(std::vector<std::unique_ptr<StoreApi>> layers,
                           std::size_t substituter_start)
    : layers_(std::move(layers)), substituter_start_(substituter_start) {
  if (layers_.empty()) {
    throw std::invalid_argument("LayeredStore: no layers");
  }
  for (const auto& layer : layers_) {
    if (!layer) throw std::invalid_argument("LayeredStore: null layer");
  }
  layer_hit_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layer_hit_.push_back(
        &obs::counter("store.chain.layer" + std::to_string(i) + ".hit"));
  }
  chain_miss_ = &obs::counter("store.chain.miss");
  substituter_hit_ = &obs::counter("store.substituter.hit");
}

std::string LayeredStore::describe() const {
  std::string out = "layered[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) out += " -> ";
    out += layers_[i]->describe();
  }
  out += "]";
  return out;
}

bool LayeredStore::writable() const { return layers_.front()->writable(); }

bool LayeredStore::contains(const std::string& fingerprint) const {
  for (const auto& layer : layers_) {
    if (layer->contains(fingerprint)) return true;
  }
  return false;
}

std::optional<std::string> LayeredStore::get(
    const std::string& fingerprint) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (std::optional<std::string> payload = layers_[i]->get(fingerprint)) {
      layer_hit_[i]->add(1);
      // open_store layers substituter chains behind the root's; a hit
      // there is a cell this host never paid for.
      if (i >= substituter_start_) substituter_hit_->add(1);
      return payload;
    }
  }
  chain_miss_->add(1);
  return std::nullopt;
}

int LayeredStore::locate(const std::string& fingerprint) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->get(fingerprint)) return static_cast<int>(i);
  }
  return -1;
}

void LayeredStore::put(const std::string& fingerprint,
                       const std::string& payload) {
  layers_.front()->put(fingerprint, payload);
}

std::vector<std::string> LayeredStore::fingerprints() const {
  std::vector<std::string> out;
  for (const auto& layer : layers_) {
    const std::vector<std::string> fps = layer->fingerprints();
    out.insert(out.end(), fps.begin(), fps.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LayeredStore::put_manifest(const Manifest& m) {
  layers_.front()->put_manifest(m);
}

std::vector<Manifest> LayeredStore::manifests(const std::string& bench) const {
  std::vector<Manifest> out;
  for (const auto& layer : layers_) {
    std::vector<Manifest> ms = layer->manifests(bench);
    for (Manifest& m : ms) out.push_back(std::move(m));
  }
  return out;
}

MergeStats merge_records(StoreApi& dst, const StoreApi& src) {
  MergeStats stats;
  for (const std::string& fp : src.fingerprints()) {
    if (dst.contains(fp)) {
      ++stats.present;
      continue;
    }
    const std::optional<std::string> payload = src.get(fp);
    if (!payload) {
      ++stats.corrupt;
      continue;
    }
    dst.put(fp, *payload);
    ++stats.copied;
  }
  return stats;
}

StoreSpec parse_store_spec(const std::string& spec) {
  // A scheme is a leading [A-Za-z][A-Za-z0-9+.-]* followed by ':'.
  // Absolute paths ('/'), relative paths with separators before any
  // colon, and anything starting with a digit or dot all fall through
  // to "bare path" — only something that LOOKS like a scheme is judged
  // against the supported list.
  std::size_t colon = std::string::npos;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(spec[i]);
    if (c == ':' && i > 0) {
      colon = i;
      break;
    }
    const bool alpha = std::isalpha(c) != 0;
    const bool tail =
        alpha || std::isdigit(c) != 0 || c == '+' || c == '.' || c == '-';
    if (i == 0 ? !alpha : !tail) break;
  }
  if (colon == std::string::npos) return StoreSpec{"", spec};
  std::string scheme = spec.substr(0, colon);
  for (char& c : scheme) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (scheme != "local" && scheme != "segment") {
    throw std::invalid_argument(
        "unknown store scheme '" + scheme + ":' in '" + spec +
        "' — supported: local:<dir>, segment:<dir>, or a bare path");
  }
  const std::string path = spec.substr(colon + 1);
  if (path.empty()) {
    throw std::invalid_argument("store spec '" + spec +
                                "' has an empty path — supported: "
                                "local:<dir>, segment:<dir>, or a bare path");
  }
  return StoreSpec{std::move(scheme), path};
}

bool store_spec_exists(const std::string& spec) {
  const StoreSpec s = parse_store_spec(spec);
  if (s.scheme == "segment") {
    std::error_code ec;
    return fs::is_directory(fs::path(s.path) / "segments", ec);
  }
  return store_exists(s.path);
}

std::unique_ptr<LayeredStore> open_store(
    const std::string& dir, const std::vector<std::string>& substituters,
    bool create) {
  const StoreSpec root = parse_store_spec(dir);
  std::vector<std::unique_ptr<StoreApi>> layers;
  if (root.scheme == "segment") {
    if (!store_spec_exists(dir)) {
      throw std::invalid_argument("open_store: '" + dir +
                                  "' is not a segment store (no segments/ "
                                  "directory)");
    }
    layers.push_back(std::make_unique<SegmentStore>(root.path));
  } else {
    layers.push_back(std::make_unique<LocalDirStore>(root.path, create));
    layers.push_back(std::make_unique<SegmentStore>(root.path));
  }
  const std::size_t substituter_start = layers.size();
  for (const std::string& sub : substituters) {
    const StoreSpec s = parse_store_spec(sub);
    if (!store_spec_exists(sub)) {
      throw std::invalid_argument("open_store: substituter '" + sub +
                                  "' is not a store (no objects/ or "
                                  "segments/ directory)");
    }
    if (s.scheme != "segment") {
      layers.push_back(
          std::make_unique<LocalDirStore>(s.path, /*create=*/false));
    }
    layers.push_back(std::make_unique<SegmentStore>(s.path));
  }
  return std::make_unique<LayeredStore>(std::move(layers), substituter_start);
}

}  // namespace falvolt::store
