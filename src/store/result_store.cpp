#include "store/result_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "store/fingerprint.h"
#include "store/hash.h"

namespace fs = std::filesystem;

namespace falvolt::store {

namespace {

constexpr std::uint32_t kRecordMagic = 0x46565253;  // "FVRS"

// Frame header preceding every payload: magic u32, format epoch u32,
// payload length u64 — all explicitly little-endian so stores move
// between machines regardless of host byte order — then the 32-byte
// SHA-256 of the payload.
constexpr std::size_t kHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) + 32;

void encode_le(std::uint8_t* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t decode_le(const std::uint8_t* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= std::uint64_t{in[i]} << (8 * i);
  }
  return v;
}

void require_fingerprint(const std::string& fp) {
  if (!is_fingerprint(fp)) {
    throw std::invalid_argument("ResultStore: malformed fingerprint '" + fp +
                                "'");
  }
}

}  // namespace

bool store_exists(const std::string& root) {
  std::error_code ec;
  return !root.empty() && fs::is_directory(fs::path(root) / "objects", ec);
}

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {
  if (root_.empty()) {
    throw std::invalid_argument("ResultStore: empty root directory");
  }
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "objects", ec);
  fs::create_directories(fs::path(root_) / "manifests", ec);
  fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) {
    throw std::runtime_error("ResultStore: cannot create " + root_ + ": " +
                             ec.message());
  }
}

std::string ResultStore::object_path(const std::string& fingerprint) const {
  require_fingerprint(fingerprint);
  return (fs::path(root_) / "objects" / fingerprint.substr(0, 2) /
          (fingerprint + ".rec"))
      .string();
}

bool ResultStore::contains(const std::string& fingerprint) const {
  std::error_code ec;
  return fs::exists(object_path(fingerprint), ec);
}

std::string ResultStore::stage(const std::string& payload) const {
  // Unique staging name: pid + a process-wide counter. Concurrent
  // writers (threads of one sweep, or several shard processes sharing a
  // store) each stage privately and race only on the final rename,
  // which is atomic.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      (fs::path(root_) / "tmp" /
       ("rec." + std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1)) + ".tmp"))
          .string();

  Sha256 h;
  h.update(payload);
  const Sha256::Digest checksum = h.digest();
  std::uint8_t header[kHeaderBytes];
  encode_le(header, kRecordMagic, 4);
  encode_le(header + 4, kStoreFormatEpoch, 4);
  encode_le(header + 8, payload.size(), 8);
  std::memcpy(header + 16, checksum.data(), checksum.size());

  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("ResultStore: cannot stage " + tmp);
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("ResultStore: short write staging " + tmp);
  }
  out.close();
  return tmp;
}

void ResultStore::put(const std::string& fingerprint,
                      const std::string& payload) const {
  const std::string final_path = object_path(fingerprint);
  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  if (ec) {
    throw std::runtime_error("ResultStore: cannot create shard dir for " +
                             fingerprint + ": " + ec.message());
  }
  const std::string tmp = stage(payload);
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ResultStore: cannot publish " + final_path);
  }
}

std::optional<std::string> ResultStore::get(
    const std::string& fingerprint) const {
  const std::string path = object_path(fingerprint);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  if (file_size < kHeaderBytes) return std::nullopt;

  std::uint8_t header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || decode_le(header, 4) != kRecordMagic ||
      decode_le(header + 4, 4) != kStoreFormatEpoch) {
    return std::nullopt;
  }
  // The length must match the file exactly: a truncated payload AND a
  // record with trailing garbage both read as a miss.
  const std::uint64_t payload_len = decode_le(header + 8, 8);
  if (payload_len != file_size - kHeaderBytes) return std::nullopt;

  std::string payload(payload_len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) return std::nullopt;

  Sha256 h;
  h.update(payload);
  const Sha256::Digest digest = h.digest();
  if (std::memcmp(digest.data(), header + 16, digest.size()) != 0) {
    return std::nullopt;
  }
  return payload;
}

std::vector<std::string> ResultStore::fingerprints() const {
  std::vector<std::string> out;
  const fs::path objects = fs::path(root_) / "objects";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(objects, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path p = it->path();
    if (p.extension() != ".rec") continue;
    const std::string fp = p.stem().string();
    if (is_fingerprint(fp)) out.push_back(fp);
  }
  std::sort(out.begin(), out.end());
  return out;
}

ResultStore::MergeStats ResultStore::merge_from(const ResultStore& src) const {
  MergeStats stats;
  for (const std::string& fp : src.fingerprints()) {
    if (contains(fp)) {
      ++stats.present;
      continue;
    }
    const std::optional<std::string> payload = src.get(fp);
    if (!payload) {
      ++stats.corrupt;
      continue;
    }
    put(fp, *payload);
    ++stats.copied;
  }
  return stats;
}

}  // namespace falvolt::store
