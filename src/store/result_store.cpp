#include "store/result_store.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "io/env.h"
#include "obs/metrics.h"
#include "store/fingerprint.h"
#include "store/manifest.h"
#include "store/record_frame.h"

namespace fs = std::filesystem;

namespace falvolt::store {

namespace {

void require_fingerprint(const std::string& fp) {
  if (!is_fingerprint(fp)) {
    throw std::invalid_argument("LocalDirStore: malformed fingerprint '" + fp +
                                "'");
  }
}

}  // namespace

bool store_exists(const std::string& root) {
  std::error_code ec;
  if (root.empty()) return false;
  return fs::is_directory(fs::path(root) / "objects", ec) ||
         fs::is_directory(fs::path(root) / "segments", ec);
}

InProgressGuard::InProgressGuard(const std::string& root) {
  const std::string dir = (fs::path(root) / "tmp").string();
  if (!io::env().mkdirs(dir)) return;  // advisory: never fail the sweep
  std::string path =
      (fs::path(dir) / ("inprogress." + std::to_string(::getpid()))).string();
  if (io::env().write_file(path, std::to_string(::getpid()) + "\n")) {
    path_ = std::move(path);
  }
}

InProgressGuard::~InProgressGuard() {
  if (!path_.empty()) io::env().unlink_file(path_);
}

std::vector<int> live_inprogress_pids(const std::string& root) {
  std::vector<int> out;
  std::error_code ec;
  const fs::path dir = fs::path(root) / "tmp";
  constexpr const char* kPrefix = "inprogress.";
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string digits = name.substr(std::strlen(kPrefix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const int pid = std::atoi(digits.c_str());
    if (pid <= 0 || pid == ::getpid()) continue;
    // Signal 0 probes existence without delivering anything; EPERM
    // still means "exists" (someone else's process).
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM) {
      out.push_back(pid);
    } else {
      // Crash residue from a SIGKILLed fleet — reap it so one dead run
      // never wedges every future merge.
      io::env().unlink_file(it->path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LocalDirStore::LocalDirStore(std::string root, bool create)
    : root_(std::move(root)), writable_(create) {
  if (root_.empty()) {
    throw std::invalid_argument("LocalDirStore: empty root directory");
  }
  if (!create) return;
  const bool ok = io::env().mkdirs((fs::path(root_) / "objects").string()) &&
                  io::env().mkdirs((fs::path(root_) / "manifests").string()) &&
                  io::env().mkdirs((fs::path(root_) / "tmp").string());
  if (!ok) {
    throw std::runtime_error("LocalDirStore: cannot create " + root_);
  }
}

std::string LocalDirStore::describe() const { return "dir:" + root_; }

std::string LocalDirStore::object_path(const std::string& fingerprint) const {
  require_fingerprint(fingerprint);
  return (fs::path(root_) / "objects" / fingerprint.substr(0, 2) /
          (fingerprint + ".rec"))
      .string();
}

bool LocalDirStore::contains(const std::string& fingerprint) const {
  std::error_code ec;
  return fs::exists(object_path(fingerprint), ec);
}

void LocalDirStore::put(const std::string& fingerprint,
                        const std::string& payload) {
  const std::string final_path = object_path(fingerprint);
  if (!writable_) {
    throw std::logic_error("LocalDirStore: put into read-only store " +
                           describe());
  }
  if (!io::env().mkdirs(fs::path(final_path).parent_path().string())) {
    throw std::runtime_error("LocalDirStore: cannot create shard dir for " +
                             fingerprint);
  }
  io::atomic_publish((fs::path(root_) / "tmp").string(), "rec", final_path,
                     frame_record(payload));
  static obs::Counter& puts = obs::counter("store.local.put");
  static obs::Counter& put_bytes = obs::counter("store.local.put_bytes");
  puts.add(1);
  put_bytes.add(payload.size());
}

std::optional<std::string> LocalDirStore::get(
    const std::string& fingerprint) const {
  // Telemetry (observation only — never changes what get returns):
  // hit/miss for the read chain, degraded for a record file that EXISTS
  // but fails frame validation — the population that silently turns a
  // warm run into a recompute, which is exactly what fleet operators
  // need surfaced.
  static obs::Counter& hits = obs::counter("store.local.hit");
  static obs::Counter& misses = obs::counter("store.local.miss");
  static obs::Counter& degraded = obs::counter("store.local.degraded");
  static obs::Counter& get_bytes = obs::counter("store.local.get_bytes");
  const std::string path = object_path(fingerprint);
  std::optional<std::string> bytes = io::env().read_file(path);
  if (!bytes) {
    // Distinguish "no record" from "record exists but cannot be read":
    // the first is a cold miss, the second counts as degraded damage.
    if (io::env().file_size(path)) {
      degraded.add(1);
    } else {
      misses.add(1);
    }
    return std::nullopt;
  }
  std::optional<std::string> payload = unframe_record(*bytes);
  if (!payload) {
    degraded.add(1);
    return std::nullopt;
  }
  hits.add(1);
  get_bytes.add(payload->size());
  return payload;
}

std::vector<std::string> LocalDirStore::fingerprints() const {
  std::vector<std::string> out;
  const fs::path objects = fs::path(root_) / "objects";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(objects, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path p = it->path();
    if (p.extension() != ".rec") continue;
    const std::string fp = p.stem().string();
    if (is_fingerprint(fp)) out.push_back(fp);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void LocalDirStore::put_manifest(const Manifest& m) {
  if (!writable_) {
    throw std::logic_error("LocalDirStore: put_manifest into read-only store " +
                           describe());
  }
  write_manifest(*this, m);
}

std::vector<Manifest> LocalDirStore::manifests(const std::string& bench) const {
  std::vector<Manifest> out;
  for (const std::string& path : list_manifests(*this, bench)) {
    if (std::optional<Manifest> m = read_manifest(path)) {
      out.push_back(std::move(*m));
    }
  }
  return out;
}

}  // namespace falvolt::store
