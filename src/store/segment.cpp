#include "store/segment.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <tuple>

#include "io/env.h"
#include "obs/metrics.h"
#include "store/fingerprint.h"
#include "store/hash.h"
#include "store/record_frame.h"

namespace fs = std::filesystem;

namespace falvolt::store {

namespace {

std::string hex_encode(const std::uint8_t* bytes, std::size_t n) {
  static const char* kHex = "0123456789abcdef";
  std::string out(n * 2, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    out[2 * i] = kHex[bytes[i] >> 4];
    out[2 * i + 1] = kHex[bytes[i] & 0xF];
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

// Decode a 64-char hex fingerprint into 32 raw bytes; false on any
// non-hex character.
bool hex_decode_fp(const std::string& fp, std::uint8_t out[32]) {
  if (fp.size() != 64) return false;
  for (std::size_t i = 0; i < 32; ++i) {
    const int hi = hex_nibble(fp[2 * i]);
    const int lo = hex_nibble(fp[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

struct ParsedIndex {
  /// (hex fingerprint, offset, length), index order (sorted by raw fp).
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> entries;
  std::uint64_t file_bytes = 0;
};

// Validate one segment's footer + index and return its entries; nullopt
// on ANY damage (short file, bad magic, foreign epoch, index checksum
// mismatch, out-of-range extents). Never throws.
std::optional<ParsedIndex> parse_segment_index(const std::string& path) {
  const std::optional<std::uint64_t> size = io::env().file_size(path);
  if (!size) return std::nullopt;
  const std::uint64_t file_size = *size;
  if (file_size < kSegmentFooterBytes) return std::nullopt;

  const std::optional<std::string> footer_bytes = io::env().read_range(
      path, file_size - kSegmentFooterBytes, kSegmentFooterBytes);
  if (!footer_bytes) return std::nullopt;
  const std::uint8_t* footer =
      reinterpret_cast<const std::uint8_t*>(footer_bytes->data());
  if (decode_le(footer, 4) != kSegmentMagic ||
      decode_le(footer + 4, 4) != kStoreFormatEpoch) {
    return std::nullopt;
  }
  const std::uint64_t entry_count = decode_le(footer + 8, 8);
  const std::uint64_t index_offset = decode_le(footer + 16, 8);
  const std::uint64_t index_bytes = entry_count * kSegmentIndexEntryBytes;
  if (index_offset + index_bytes != file_size - kSegmentFooterBytes) {
    return std::nullopt;
  }

  const std::optional<std::string> index =
      io::env().read_range(path, index_offset, index_bytes);
  if (!index) return std::nullopt;
  Sha256 h;
  h.update(*index);
  const Sha256::Digest digest = h.digest();
  if (std::memcmp(digest.data(), footer + 24, digest.size()) != 0) {
    return std::nullopt;
  }

  ParsedIndex parsed;
  parsed.file_bytes = file_size;
  parsed.entries.reserve(entry_count);
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(index->data());
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint8_t* e = p + i * kSegmentIndexEntryBytes;
    const std::uint64_t offset = decode_le(e + 32, 8);
    const std::uint64_t length = decode_le(e + 40, 8);
    if (offset + length > index_offset) return std::nullopt;
    parsed.entries.emplace_back(hex_encode(e, 32), offset, length);
  }
  return parsed;
}

std::vector<std::string> segment_paths(const std::string& root) {
  std::vector<std::string> out;
  const fs::path dir = fs::path(root) / "segments";
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".seg") continue;
    out.push_back(it->path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<SegmentInfo> list_segments(const std::string& root) {
  std::vector<SegmentInfo> out;
  for (const std::string& path : segment_paths(root)) {
    SegmentInfo info;
    info.path = path;
    if (const std::optional<ParsedIndex> parsed = parse_segment_index(path)) {
      info.readable = true;
      info.file_bytes = parsed->file_bytes;
      for (const auto& [fp, offset, length] : parsed->entries) {
        info.record_bytes += length;
        info.entries.emplace_back(fp, length);
      }
    } else {
      std::error_code ec;
      info.file_bytes = fs::file_size(path, ec);
      if (ec) info.file_bytes = 0;
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string write_segment(
    const std::string& root,
    const std::vector<std::pair<std::string, std::string>>& records) {
  if (records.empty()) {
    throw std::invalid_argument("write_segment: empty record set");
  }

  // Sort by fingerprint: the index is binary-search-friendly and the
  // segment name digest is order-independent of the caller.
  std::vector<const std::pair<std::string, std::string>*> ordered;
  ordered.reserve(records.size());
  for (const auto& rec : records) ordered.push_back(&rec);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  Sha256 name_hash;
  for (const auto* rec : ordered) {
    name_hash.update(rec->first);
    name_hash.update("\n");
  }
  const std::string digest = name_hash.hex();

  if (!io::env().mkdirs((fs::path(root) / "segments").string())) {
    throw std::runtime_error("write_segment: cannot create dirs under " + root);
  }
  const std::string final_path =
      (fs::path(root) / "segments" / (digest.substr(0, 12) + ".seg")).string();

  // Assemble the whole segment (records, index, footer) in memory, then
  // publish the one blob atomically — readers can never race a
  // half-written index, and the fault harness covers the entire write
  // with one torn/flip/kill surface.
  std::string blob;
  std::string index;
  index.reserve(ordered.size() * kSegmentIndexEntryBytes);
  std::uint64_t offset = 0;
  for (const auto* rec : ordered) {
    std::uint8_t raw_fp[32];
    if (!hex_decode_fp(rec->first, raw_fp)) {
      throw std::invalid_argument("write_segment: malformed fingerprint '" +
                                  rec->first + "'");
    }
    const std::string framed = frame_record(rec->second);
    blob += framed;

    std::uint8_t entry[kSegmentIndexEntryBytes];
    std::memcpy(entry, raw_fp, 32);
    encode_le(entry + 32, offset, 8);
    encode_le(entry + 40, framed.size(), 8);
    index.append(reinterpret_cast<const char*>(entry), sizeof(entry));
    offset += framed.size();
  }

  blob += index;

  Sha256 index_hash;
  index_hash.update(index);
  const Sha256::Digest index_digest = index_hash.digest();
  std::uint8_t footer[kSegmentFooterBytes];
  encode_le(footer, kSegmentMagic, 4);
  encode_le(footer + 4, kStoreFormatEpoch, 4);
  encode_le(footer + 8, ordered.size(), 8);
  encode_le(footer + 16, offset, 8);
  std::memcpy(footer + 24, index_digest.data(), index_digest.size());
  blob.append(reinterpret_cast<const char*>(footer), sizeof(footer));

  io::atomic_publish((fs::path(root) / "tmp").string(), "seg", final_path,
                     blob);
  return final_path;
}

SegmentStore::SegmentStore(std::string root) : root_(std::move(root)) {
  for (const std::string& path : segment_paths(root_)) {
    const std::optional<ParsedIndex> parsed = parse_segment_index(path);
    if (!parsed) continue;  // damaged segment: all its records miss
    ++segment_files_;
    for (const auto& [fp, offset, length] : parsed->entries) {
      // Duplicate fingerprints across segments agree by content
      // addressing; first segment wins.
      index_.emplace(fp, Location{path, offset, length});
    }
  }
}

std::string SegmentStore::describe() const { return "seg:" + root_; }

bool SegmentStore::contains(const std::string& fingerprint) const {
  return index_.count(fingerprint) != 0;
}

std::optional<std::string> SegmentStore::get(
    const std::string& fingerprint) const {
  static obs::Counter& hits = obs::counter("store.segment.hit");
  static obs::Counter& misses = obs::counter("store.segment.miss");
  static obs::Counter& degraded = obs::counter("store.segment.degraded");
  static obs::Counter& get_bytes = obs::counter("store.segment.get_bytes");
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    misses.add(1);
    return std::nullopt;
  }
  const Location& loc = it->second;
  const std::optional<std::string> framed =
      io::env().read_range(loc.path, loc.offset, loc.length);
  if (!framed) {
    degraded.add(1);
    return std::nullopt;
  }
  // Per-record frame validation, exactly as for loose files: a bit flip
  // inside one record degrades only that record to recompute (and is
  // counted — an indexed entry that fails validation is degraded, not a
  // plain miss).
  std::optional<std::string> payload = unframe_record(*framed);
  if (!payload) {
    degraded.add(1);
    return std::nullopt;
  }
  hits.add(1);
  get_bytes.add(payload->size());
  return payload;
}

void SegmentStore::put(const std::string& fingerprint, const std::string&) {
  throw std::logic_error("SegmentStore: put('" + fingerprint +
                         "') into read-only segment store " + describe());
}

std::vector<std::string> SegmentStore::fingerprints() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [fp, loc] : index_) out.push_back(fp);
  return out;  // std::map iteration order: already sorted + deduped
}

void SegmentStore::put_manifest(const Manifest& m) {
  throw std::logic_error("SegmentStore: put_manifest('" + m.bench +
                         "') into read-only segment store " + describe());
}

std::vector<Manifest> SegmentStore::manifests(const std::string&) const {
  return {};  // manifests live in the loose-object store
}

}  // namespace falvolt::store
