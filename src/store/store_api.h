#pragma once
// StoreApi — the abstract interface every result-store consumer
// programs against (the Nix store-api.hh/substituter split is the
// exemplar). A store maps content-address fingerprints to validated
// record payloads and holds grid manifests; HOW those records live on
// (or off) disk is the backend's business:
//
//   LocalDirStore   loose objects/<fp[0:2]>/<fp>.rec files + manifests
//                   (result_store.h) — the writable default.
//   SegmentStore    read-only view of indexed append-only segment files
//                   (segment.h) produced by `sweep_merge --compact`.
//   LayeredStore    ordered read-through chain: get() takes the first
//                   layer that has a valid record, put() writes to the
//                   front. This is both how a local root combines its
//                   loose objects with its segments AND how a worker
//                   substitutes cells computed elsewhere (--substituters:
//                   read-only stores consulted behind the local one).
//
// The contract every backend honors: get() validates the full record
// frame and returns nullopt on ANY damage (recompute, never throw);
// put() is atomic and durable (readers never see partial records, and
// a crash after put() returns cannot lose it); fingerprints() lists
// names without validating. A future remote/HTTP substituter implements
// this same interface — the sweep engine, merge tool, and fleet driver
// never learn the difference.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/manifest.h"

namespace falvolt::store {

class StoreApi {
 public:
  virtual ~StoreApi() = default;

  /// Human-readable identity for logs and errors, e.g. "dir:/x/store".
  virtual std::string describe() const = 0;

  /// False for read-only backends (segments, substituters); their
  /// put()/put_manifest() throw std::logic_error.
  virtual bool writable() const = 0;

  /// True when a record file/entry exists under `fingerprint`
  /// (unvalidated — a corrupt record still "exists" until GC'd).
  virtual bool contains(const std::string& fingerprint) const = 0;

  /// Read and validate the record; nullopt means "no usable record"
  /// (missing, foreign epoch, truncated, bit-flipped...). Never throws
  /// on damage.
  virtual std::optional<std::string> get(
      const std::string& fingerprint) const = 0;

  /// Store `payload` under `fingerprint` (atomic + durable; an existing
  /// record is replaced). Throws on I/O errors and on read-only stores.
  virtual void put(const std::string& fingerprint,
                   const std::string& payload) = 0;

  /// Every fingerprint with a record in this store (names only,
  /// unvalidated), sorted and deduplicated.
  virtual std::vector<std::string> fingerprints() const = 0;

  /// Publish a grid manifest (atomic + durable). Throws on read-only
  /// stores.
  virtual void put_manifest(const Manifest& m) = 0;

  /// Every readable manifest, optionally filtered to one bench.
  virtual std::vector<Manifest> manifests(
      const std::string& bench = "") const = 0;
};

/// Ordered read-through chain over owned backends. Reads consult layers
/// front to back and return the first valid hit; writes (records and
/// manifests) always land in the front layer, which must be writable.
/// fingerprints()/manifests() union all layers (fingerprints deduped).
class LayeredStore : public StoreApi {
 public:
  /// `layers` must be non-empty; layers[0] is the write target.
  /// `substituter_start` is the index of the first layer that belongs
  /// to a substituter rather than the local root (hits from there feed
  /// the store.substituter.hit counter); open_store computes it from
  /// how many layers the root's scheme contributes.
  explicit LayeredStore(std::vector<std::unique_ptr<StoreApi>> layers,
                        std::size_t substituter_start = 2);

  std::string describe() const override;
  bool writable() const override;
  bool contains(const std::string& fingerprint) const override;
  std::optional<std::string> get(
      const std::string& fingerprint) const override;
  void put(const std::string& fingerprint,
           const std::string& payload) override;
  std::vector<std::string> fingerprints() const override;
  void put_manifest(const Manifest& m) override;
  std::vector<Manifest> manifests(const std::string& bench) const override;

  /// Index of the first layer holding a valid record of `fingerprint`,
  /// or -1 — distinguishes a local hit from a substituter hit.
  int locate(const std::string& fingerprint) const;

  std::size_t layer_count() const { return layers_.size(); }
  const StoreApi& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<StoreApi>> layers_;
  std::size_t substituter_start_;
  // Chain telemetry (obs/metrics.h), resolved once at construction so
  // the read path pays only relaxed adds: which layer POSITION served
  // each hit ("store.chain.layer<i>.hit" — open_store puts the local
  // root's layers first, substituter layers behind), whole-chain
  // misses, and the substituter-served subset. Registry entries are
  // immortal, so these pointers never dangle.
  std::vector<obs::Counter*> layer_hit_;
  obs::Counter* chain_miss_ = nullptr;
  obs::Counter* substituter_hit_ = nullptr;
};

struct MergeStats {
  int copied = 0;    ///< records imported from src
  int present = 0;   ///< already in dst (content-addressed skip)
  int corrupt = 0;   ///< records in src that failed validation
};

/// Union src's records into dst. Every candidate is re-validated before
/// import (a corrupt source record is skipped and counted, never
/// propagated); records dst already has are kept — with content
/// addressing both sides agree, so skip-if-present is harmless.
MergeStats merge_records(StoreApi& dst, const StoreApi& src);

/// A parsed store spec. Everywhere a store is named on a command line
/// (`--store`, `--substituters`, sweep_merge's `--into`/`--from`) the
/// same URI-style grammar applies:
///
///   local:<dir>    the standard local chain: writable loose objects
///                  over the directory's indexed segments
///   segment:<dir>  ONLY the directory's segment files, read-only —
///                  a fully-compacted archive served as-is
///   <dir>          bare path (no scheme), same as local:<dir>
///
/// A future remote backend is one new scheme (e.g. https:) here plus
/// one StoreApi class — no consumer changes.
struct StoreSpec {
  std::string scheme;  ///< "local", "segment", or "" for a bare path
  std::string path;    ///< filesystem root the scheme applies to
};

/// Parse a store spec. A leading `[A-Za-z][A-Za-z0-9+.-]*:` is a
/// scheme (so absolute and relative paths can never be mistaken for
/// one); anything else is a bare path. Throws std::invalid_argument
/// naming the supported forms on an unknown scheme or an empty path —
/// CLI drivers print the message and exit 1.
StoreSpec parse_store_spec(const std::string& spec);

/// Spec-aware existence probe: does `spec` already hold a store of its
/// scheme's shape? (`segment:` needs a segments/ directory; `local:` /
/// bare accept loose objects or segments-only roots.) Read-side callers
/// check this before opening so a typo'd path is an error, not a
/// silently-materialized empty store.
bool store_spec_exists(const std::string& spec);

/// Open the store named by spec `dir` with a read-only chain per
/// substituter spec layered behind it. For `local:`/bare specs the
/// root's loose objects (writable, front) sit over its indexed
/// segments and creating the directories is the default (it is a
/// sweep's destination); with create=false nothing is materialized and
/// the root opens read-only. `segment:` roots contribute only their
/// (read-only) segment layer. Substituter roots are never created and
/// must already hold a store (throws std::invalid_argument otherwise —
/// a typo'd substituter must not silently read as "everything
/// misses").
std::unique_ptr<LayeredStore> open_store(
    const std::string& dir,
    const std::vector<std::string>& substituters = {}, bool create = true);

}  // namespace falvolt::store
