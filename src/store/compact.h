#pragma once
// Segment compaction: pack a store's loose `.rec` records into one
// indexed segment file (segment.h) and delete the loose copies —
// `sweep_merge --compact`.
//
// Crash-safety protocol (the order is the whole point):
//
//   1. Read and validate every loose record not already covered by a
//      valid segment. Corrupt loose records are left in place for GC.
//   2. Write ONE new segment holding those records and publish it
//      durably (fsync + rename + directory fsync).
//   3. Only then delete the loose copies of the records the segment
//      (or a pre-existing one) covers.
//
// A crash anywhere before step 3 leaves every loose record readable —
// at worst an orphaned tmp file or a duplicate (loose + segmented)
// record, both harmless: loose shadows segment in the read chain, and
// re-running compaction converges (the duplicate counts as
// already_segmented and its loose copy is deleted). Concurrent writers
// are safe too: compaction packs a snapshot of fingerprints and deletes
// only the exact files it packed, so records landing mid-compact simply
// stay loose until the next run.

#include <cstdint>
#include <string>

namespace falvolt::store {

class LocalDirStore;

struct CompactStats {
  int packed = 0;              ///< loose records moved into the new segment
  int already_segmented = 0;   ///< loose copies deleted (segment already had them)
  int corrupt = 0;             ///< invalid loose records left for GC
  int segments_written = 0;    ///< 0 or 1
  std::uint64_t packed_bytes = 0;  ///< framed bytes now living in segments
};

/// Compact `store`'s loose records into a segment per the protocol
/// above. No-op (all-zero stats) when every valid record is already
/// segmented. Throws on I/O failure writing the segment — in which case
/// nothing has been deleted.
CompactStats compact_store(const LocalDirStore& store);

std::string to_text(const CompactStats& stats);

}  // namespace falvolt::store
