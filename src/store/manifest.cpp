#include "store/manifest.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "io/env.h"
#include "store/fingerprint.h"
#include "store/hash.h"
#include "store/record_frame.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::store {

// Text format (one record per line, '\n' separated):
//
//   falvolt-manifest <epoch>
//   bench <name>
//   cells <n>
//   <fingerprint> <key>        x n, grid order
//
// Keys may contain spaces (everything after the first space of a cell
// line); fingerprints are fixed-width hex so the split is unambiguous.

std::string Manifest::grid_digest() const {
  Sha256 h;
  for (const auto& [fp, key] : entries) {
    h.update(fp);
    h.update("\n");
  }
  return h.hex();
}

std::string Manifest::to_text() const {
  std::string out = "falvolt-manifest " +
                    std::to_string(kStoreFormatEpoch) + "\nbench " + bench +
                    "\ncells " + std::to_string(entries.size()) + "\n";
  for (const auto& [fp, key] : entries) {
    out += fp;
    out += ' ';
    out += key;
    out += '\n';
  }
  return out;
}

std::optional<Manifest> parse_manifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      line != "falvolt-manifest " + std::to_string(kStoreFormatEpoch)) {
    return std::nullopt;
  }
  Manifest m;
  if (!std::getline(in, line) || line.rfind("bench ", 0) != 0) {
    return std::nullopt;
  }
  m.bench = line.substr(6);
  if (!std::getline(in, line) || line.rfind("cells ", 0) != 0) {
    return std::nullopt;
  }
  std::size_t cells = 0;
  try {
    cells = std::stoul(line.substr(6));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return std::nullopt;
    std::string fp = line.substr(0, space);
    if (!is_fingerprint(fp)) return std::nullopt;
    m.entries.emplace_back(std::move(fp), line.substr(space + 1));
  }
  // A truncated manifest (fewer cells than declared) must not silently
  // shrink a grid.
  if (m.entries.size() != cells) return std::nullopt;
  return m;
}

std::string manifest_path(const LocalDirStore& store, const Manifest& m) {
  return (fs::path(store.root()) / "manifests" /
          (m.bench + "-" + m.grid_digest().substr(0, 12) + ".manifest"))
      .string();
}

void write_manifest(const LocalDirStore& store, const Manifest& m) {
  io::atomic_publish((fs::path(store.root()) / "tmp").string(), "manifest",
                     manifest_path(store, m), m.to_text());
}

std::optional<Manifest> read_manifest(const std::string& path) {
  const std::optional<std::string> text = io::env().read_file(path);
  if (!text) return std::nullopt;
  return parse_manifest(*text);
}

std::vector<std::string> list_manifests(const LocalDirStore& store,
                                        const std::string& bench) {
  std::vector<std::string> out;
  const fs::path dir = fs::path(store.root()) / "manifests";
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".manifest") continue;
    if (!bench.empty()) {
      const std::optional<Manifest> m = read_manifest(it->path().string());
      if (!m || m->bench != bench) continue;
    }
    out.push_back(it->path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace falvolt::store
