#pragma once
// Canonical fingerprinting for the content-addressed result store.
//
// A fingerprint is the SHA-256 of an unambiguous serialization of every
// (name, value) pair fed to the Fingerprinter, prefixed with the store
// format epoch. Callers list everything that determines a result — a
// missing field risks a stale hit, an extra field only costs a spurious
// recompute, so when in doubt a field is added. Field order matters (the
// serialization is a stream, not a set); callers must feed fields in a
// fixed, documented order.

#include <cstdint>
#include <string>

#include "store/hash.h"

namespace falvolt::store {

/// Version of the store's on-disk record format AND of the semantics of
/// the computations behind it. Bumping it invalidates every existing
/// store entry at once — the escape hatch when a result-affecting
/// algorithm changes without any fingerprinted input changing.
///
/// Any record-payload codec change (core::encode_scenario_result) MUST
/// bump this too: fingerprints hash the epoch, so the bump re-addresses
/// every cell and an old-codec record can never share a fingerprint
/// with a new one. Without it, merge_from()'s skip-if-present would
/// keep a stale old-codec record over a freshly computed one at the
/// same address. Old records/manifests degrade to recompute-on-read;
/// `sweep_merge --prune` reclaims them.
///
/// Epoch 2: ScenarioResult codec v2 (provenance block appended).
inline constexpr std::uint32_t kStoreFormatEpoch = 2;

/// Accumulates typed, named fields into a SHA-256 fingerprint. Every
/// field is framed with its name and byte length, so no two distinct
/// field sequences can serialize to the same byte stream.
class Fingerprinter {
 public:
  Fingerprinter();

  Fingerprinter& add(const std::string& name, const std::string& value);
  Fingerprinter& add(const std::string& name, std::int64_t value);
  Fingerprinter& add(const std::string& name, std::uint64_t value);
  /// Doubles are canonicalized with "%.17g" — enough digits to
  /// round-trip, so bitwise-equal doubles always fingerprint equally.
  Fingerprinter& add(const std::string& name, double value);
  Fingerprinter& add(const std::string& name, bool value);

  /// Finalize: 64 lowercase hex characters. Call exactly once.
  std::string digest();

 private:
  void frame(const std::string& name, char tag, const std::string& value);
  Sha256 hasher_;
};

/// True iff `fp` is a well-formed fingerprint (64 lowercase hex chars).
bool is_fingerprint(const std::string& fp);

}  // namespace falvolt::store
