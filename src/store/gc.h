#pragma once
// Mark-and-sweep garbage collection for a result store.
//
// Mark: the union of every fingerprint referenced by any readable
// manifest in the store — grids name their full cell list up front
// (manifest.h), so manifest reachability IS liveness. Sweep: every
// record file under objects/ that no manifest references is deleted;
// every reachable record is re-validated (frame checksum, and
// optionally the caller's payload decoder) and deleted too when it
// fails — it could only ever read as a miss, so keeping the bytes
// would just hide the damage until the next sweep recomputes through
// it. Deleting is always safe in this store: a record is a cache entry
// addressed by everything that determines it, so the worst case of an
// over-eager sweep is a recompute, never a wrong result.
//
// Segments (segment.h) are immutable, so GC treats them whole: a
// segment keeps living as long as it holds ONE reachable record (dead
// entries inside it are only counted — compaction, not GC, rewrites
// segments); a segment with zero reachable records, or one whose index
// no longer validates (every read already misses), is deleted as a
// file.
//
// GC is an offline operation: run it only while no sweep is writing to
// the store (it clears the tmp/ staging area and removes files that a
// concurrent writer may be about to reference).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "store/result_store.h"

namespace falvolt::store {

struct GcStats {
  std::size_t manifests = 0;           ///< readable manifests marked from
  std::size_t manifests_invalid = 0;   ///< unreadable manifests removed
  std::size_t live = 0;                ///< reachable + valid loose, kept
  std::size_t unreachable = 0;         ///< deleted: no manifest references
  std::size_t invalid = 0;             ///< deleted: reachable but corrupt /
                                       ///< stale-format (recompute-on-read)
  std::size_t tmp_removed = 0;         ///< staging leftovers cleared
  std::size_t segments_kept = 0;       ///< segments with ≥1 reachable record
  std::size_t segments_deleted = 0;    ///< fully-dead or unreadable segments
  std::size_t segment_live = 0;        ///< reachable records inside kept segments
  std::size_t segment_dead = 0;        ///< dead records riding in kept segments
  std::uint64_t segment_dead_bytes = 0;  ///< their bytes (recompact to reclaim)

  std::size_t deleted() const { return unreachable + invalid; }
  std::string to_string() const;
};

/// Validates a record payload beyond the store frame. The store layer
/// cannot decode payloads (the codec lives above it, in core), so the
/// caller passes its decoder; an empty function skips payload checks
/// and GC validates frames only.
using PayloadCheck = std::function<bool(const std::string&)>;

/// Mark-and-sweep the store. Damage is never fatal: a corrupt record or
/// manifest is counted and removed, and the function only throws when
/// the store root itself is unusable. See the header comment for the
/// quiescence requirement.
GcStats prune_store(const LocalDirStore& store, const PayloadCheck& check = {});

}  // namespace falvolt::store
