#pragma once
// Store usage statistics for `sweep_merge --list`: how much of a store
// each bench's grid occupies, which format epochs its records were
// written under, how much the manifests share, and how the records are
// split between loose `.rec` files and indexed segments (segment.h).
//
// Bench attribution goes through the manifests (records themselves do
// not name their bench — the bench name is hashed into the fingerprint,
// not stored): a record is charged to the first manifest that references
// it, further references are counted as deduplicated, and records no
// manifest references (left behind by flag changes or epoch bumps, the
// population `--prune` reclaims) land in a "(unreferenced)" bucket.
// Records may live loose, in a segment, or both (mid-compaction
// duplicates); each address is charged once, with the loose copy — the
// one reads prefer — taken as canonical.
//
// The epoch histogram reads each record's PAYLOAD via a caller-supplied
// probe (the scenario-result codec lives above this layer in core/, so
// the store cannot decode its own payloads): the probe returns the
// provenance store-epoch of a payload, or nullopt when the payload is
// from a foreign codec. Records whose FRAME fails validation (truncated,
// foreign frame epoch, checksum mismatch) never yield a payload at all
// and are counted as unreadable — the population a prune would reclaim.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "store/result_store.h"

namespace falvolt::store {

struct StoreStats {
  struct BenchUsage {
    std::string bench;        ///< manifest bench name, or "(unreferenced)"
    std::size_t records = 0;  ///< records charged to this bench
    std::uint64_t bytes = 0;  ///< on-disk bytes of those records
  };

  std::size_t total_records = 0;  ///< distinct record addresses (loose ∪ seg)
  std::uint64_t total_bytes = 0;  ///< bytes of each address's canonical copy
  /// Per-bench usage in manifest order; the "(unreferenced)" bucket, if
  /// non-empty, is last.
  std::vector<BenchUsage> benches;
  /// Manifest references beyond the first per record — cells shared by
  /// several grid manifests that content addressing stores only once.
  std::size_t deduplicated_refs = 0;
  /// Validated records per provenance store-epoch. Readable records
  /// whose payload the probe rejects (foreign codec) count under
  /// `stale_payloads` instead.
  std::map<std::uint32_t, std::size_t> epoch_histogram;
  std::size_t stale_payloads = 0;
  /// Records whose frame failed validation (get() returned nothing).
  std::size_t unreadable_records = 0;

  // Loose-vs-segment split (`--compact` accounting).
  std::size_t loose_records = 0;       ///< .rec files under objects/
  std::uint64_t loose_bytes = 0;       ///< their on-disk bytes
  std::size_t segment_files = 0;       ///< .seg files (readable + not)
  std::size_t segment_records = 0;     ///< indexed entries in readable segments
  std::uint64_t segment_file_bytes = 0;  ///< on-disk bytes of all .seg files
  /// Bytes inside segments that reads never use: entries shadowed by a
  /// loose copy or a duplicate in an earlier segment, plus the full size
  /// of unreadable segments. Reclaimed by GC + recompaction.
  std::uint64_t segment_dead_bytes = 0;

  /// Human-readable multi-line report (the `--list` output block).
  std::string to_text() const;

  /// Machine-readable JSON object (sweep_merge --stats-json), flattened
  /// to "store.*" samples and rendered by the same encoder as the fleet
  /// summary's "metrics" block (obs::encode_metrics_json), so fleet and
  /// merge telemetry share one schema. `indent` as for the encoder.
  std::string to_json(int indent = 0) const;
};

/// Scan every record (loose and segmented) and manifest of `rs`.
/// `epoch_of` extracts the provenance store-epoch from a validated
/// payload (nullopt = foreign codec); sweep_merge passes
/// core::decode_scenario_result.
StoreStats collect_store_stats(
    const LocalDirStore& rs,
    const std::function<std::optional<std::uint32_t>(const std::string&)>&
        epoch_of);

}  // namespace falvolt::store
