#pragma once
// Store usage statistics for `sweep_merge --list`: how much of a store
// each bench's grid occupies, which format epochs its records were
// written under, and how much the manifests share.
//
// Bench attribution goes through the manifests (records themselves do
// not name their bench — the bench name is hashed into the fingerprint,
// not stored): a record is charged to the first manifest that references
// it, further references are counted as deduplicated, and records no
// manifest references (left behind by flag changes or epoch bumps, the
// population `--prune` reclaims) land in a "(unreferenced)" bucket.
//
// The epoch histogram reads each record's PAYLOAD via a caller-supplied
// probe (the scenario-result codec lives above this layer in core/, so
// the store cannot decode its own payloads): the probe returns the
// provenance store-epoch of a payload, or nullopt when the payload is
// from a foreign codec. Records whose FRAME fails validation (truncated,
// foreign frame epoch, checksum mismatch) never yield a payload at all
// and are counted as unreadable — the population a prune would reclaim.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "store/result_store.h"

namespace falvolt::store {

struct StoreStats {
  struct BenchUsage {
    std::string bench;        ///< manifest bench name, or "(unreferenced)"
    std::size_t records = 0;  ///< records charged to this bench
    std::uint64_t bytes = 0;  ///< on-disk bytes of those records
  };

  std::size_t total_records = 0;
  std::uint64_t total_bytes = 0;
  /// Per-bench usage in manifest order; the "(unreferenced)" bucket, if
  /// non-empty, is last.
  std::vector<BenchUsage> benches;
  /// Manifest references beyond the first per record — cells shared by
  /// several grid manifests that content addressing stores only once.
  std::size_t deduplicated_refs = 0;
  /// Validated records per provenance store-epoch. Readable records
  /// whose payload the probe rejects (foreign codec) count under
  /// `stale_payloads` instead.
  std::map<std::uint32_t, std::size_t> epoch_histogram;
  std::size_t stale_payloads = 0;
  /// Records whose frame failed validation (get() returned nothing).
  std::size_t unreadable_records = 0;

  /// Human-readable multi-line report (the `--list` output block).
  std::string to_text() const;
};

/// Scan every record and manifest of `rs`. `epoch_of` extracts the
/// provenance store-epoch from a validated payload (nullopt = foreign
/// codec); sweep_merge passes core::decode_scenario_result.
StoreStats collect_store_stats(
    const ResultStore& rs,
    const std::function<std::optional<std::uint32_t>(const std::string&)>&
        epoch_of);

}  // namespace falvolt::store
