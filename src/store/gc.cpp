#include "store/gc.h"

#include <filesystem>
#include <set>

#include "io/env.h"
#include "store/manifest.h"
#include "store/segment.h"

namespace fs = std::filesystem;

namespace falvolt::store {

std::string GcStats::to_string() const {
  std::string out =
      std::to_string(live) + " live record(s) kept, " +
      std::to_string(unreachable) + " unreachable + " +
      std::to_string(invalid) + " invalid deleted, " +
      std::to_string(manifests) + " manifest(s) (" +
      std::to_string(manifests_invalid) + " unreadable removed), " +
      std::to_string(tmp_removed) + " staging file(s) cleared";
  if (segments_kept + segments_deleted > 0) {
    out += ", " + std::to_string(segments_kept) + " segment(s) kept (" +
           std::to_string(segment_live) + " live / " +
           std::to_string(segment_dead) + " dead record(s), " +
           std::to_string(segment_dead_bytes) + " dead byte(s)), " +
           std::to_string(segments_deleted) + " segment(s) deleted";
  }
  return out;
}

GcStats prune_store(const LocalDirStore& store, const PayloadCheck& check) {
  GcStats stats;
  std::error_code ec;

  // Mark. An unreadable manifest contributes no roots: its grid's
  // records become unreachable and the next sweep of that grid
  // recomputes them — the same degrade-to-recompute contract as a
  // damaged record. The dead file itself is removed so it stops
  // shadowing the bench's manifest listing.
  std::set<std::string> reachable;
  for (const std::string& path : list_manifests(store)) {
    const std::optional<Manifest> m = read_manifest(path);
    if (!m) {
      if (io::env().unlink_file(path)) ++stats.manifests_invalid;
      continue;
    }
    ++stats.manifests;
    for (const auto& [fp, key] : m->entries) {
      (void)key;
      reachable.insert(fp);
    }
  }

  // Sweep objects/. fingerprints() lists record files by name only;
  // get() re-validates the full frame (magic, epoch, length, SHA-256).
  for (const std::string& fp : store.fingerprints()) {
    const std::string path = store.object_path(fp);
    // Counters only move when the remove actually happened — a
    // read-only mount must not report reclamation it never did.
    if (!reachable.count(fp)) {
      if (io::env().unlink_file(path)) ++stats.unreachable;
      continue;
    }
    const std::optional<std::string> payload = store.get(fp);
    if (!payload || (check && !check(*payload))) {
      // Corrupt, foreign-epoch, or codec-stale: every future read is a
      // miss anyway, so reclaim the bytes and let the owning sweep
      // recompute the cell.
      if (io::env().unlink_file(path)) ++stats.invalid;
      continue;
    }
    ++stats.live;
  }

  // Sweep segments/. Segments are immutable: one reachable record keeps
  // the whole file (dead co-residents are only accounted — recompacting
  // reclaims them); zero reachable records, or an index that no longer
  // validates (every entry already reads as a miss), deletes the file.
  for (const SegmentInfo& seg : list_segments(store.root())) {
    std::size_t seg_live = 0, seg_dead = 0;
    std::uint64_t dead_bytes = 0;
    for (const auto& [fp, length] : seg.entries) {
      if (reachable.count(fp)) {
        ++seg_live;
      } else {
        ++seg_dead;
        dead_bytes += length;
      }
    }
    if (!seg.readable || seg_live == 0) {
      if (io::env().unlink_file(seg.path)) ++stats.segments_deleted;
      continue;
    }
    ++stats.segments_kept;
    stats.segment_live += seg_live;
    stats.segment_dead += seg_dead;
    stats.segment_dead_bytes += dead_bytes;
  }

  // Drop the 2-hex-char shard directories emptied by the sweep (harmless
  // to keep, but a pruned store should not advertise dead shards).
  const fs::path objects = fs::path(store.root()) / "objects";
  for (fs::directory_iterator it(objects, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory(ec) && fs::is_empty(it->path(), ec)) {
      fs::remove(it->path(), ec);
    }
  }

  // Staging leftovers from crashed writers. GC requires quiescence (see
  // gc.h), so anything still in tmp/ is garbage by definition.
  const fs::path tmp = fs::path(store.root()) / "tmp";
  for (fs::directory_iterator it(tmp, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (io::env().unlink_file(it->path().string())) ++stats.tmp_removed;
  }

  return stats;
}

}  // namespace falvolt::store
