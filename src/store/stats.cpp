#include "store/stats.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "store/manifest.h"
#include "store/segment.h"

namespace fs = std::filesystem;

namespace falvolt::store {

namespace {

std::string human_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

StoreStats collect_store_stats(
    const LocalDirStore& rs,
    const std::function<std::optional<std::uint32_t>(const std::string&)>&
        epoch_of) {
  StoreStats stats;

  // On-disk size of every loose record file (unvalidated — disk usage is
  // a property of the file, not of its content). Loose copies are the
  // canonical charge for an address: they shadow segments in the read
  // chain.
  std::map<std::string, std::uint64_t> record_bytes;
  for (const std::string& fp : rs.fingerprints()) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(rs.object_path(fp), ec);
    record_bytes.emplace(fp, ec ? 0 : static_cast<std::uint64_t>(size));
  }
  stats.loose_records = record_bytes.size();
  for (const auto& [fp, bytes] : record_bytes) {
    (void)fp;
    stats.loose_bytes += bytes;
  }

  // Fold in the segments: an entry not shadowed by a loose copy (or an
  // earlier segment's) becomes the canonical copy of its address; a
  // shadowed entry is dead weight until recompaction.
  for (const SegmentInfo& seg : list_segments(rs.root())) {
    ++stats.segment_files;
    stats.segment_file_bytes += seg.file_bytes;
    if (!seg.readable) {
      stats.segment_dead_bytes += seg.file_bytes;
      continue;
    }
    stats.segment_records += seg.entries.size();
    for (const auto& [fp, length] : seg.entries) {
      if (!record_bytes.emplace(fp, length).second) {
        stats.segment_dead_bytes += length;
      }
    }
  }
  stats.total_records = record_bytes.size();
  for (const auto& [fp, bytes] : record_bytes) {
    (void)fp;
    stats.total_bytes += bytes;
  }

  // Charge each record to the first manifest that references it; count
  // every further reference as deduplicated storage.
  std::set<std::string> charged;
  for (const std::string& path : list_manifests(rs)) {
    const std::optional<Manifest> m = read_manifest(path);
    if (!m) continue;
    StoreStats::BenchUsage* usage = nullptr;
    for (StoreStats::BenchUsage& b : stats.benches) {
      if (b.bench == m->bench) usage = &b;
    }
    if (!usage) {
      stats.benches.push_back(StoreStats::BenchUsage{m->bench, 0, 0});
      usage = &stats.benches.back();
    }
    for (const auto& [fp, key] : m->entries) {
      (void)key;
      const auto it = record_bytes.find(fp);
      if (it == record_bytes.end()) continue;  // cell not computed yet
      if (!charged.insert(fp).second) {
        ++stats.deduplicated_refs;
        continue;
      }
      usage->records += 1;
      usage->bytes += it->second;
    }
  }
  StoreStats::BenchUsage unreferenced{"(unreferenced)", 0, 0};
  for (const auto& [fp, bytes] : record_bytes) {
    if (!charged.count(fp)) {
      unreferenced.records += 1;
      unreferenced.bytes += bytes;
    }
  }
  if (unreferenced.records > 0) stats.benches.push_back(unreferenced);

  // Epoch histogram from the record payloads, read through the same
  // loose-then-segments chain a sweep would use.
  const SegmentStore segments(rs.root());
  for (const auto& [fp, bytes] : record_bytes) {
    (void)bytes;
    std::optional<std::string> payload = rs.get(fp);
    if (!payload) payload = segments.get(fp);
    if (!payload) {
      ++stats.unreadable_records;
      continue;
    }
    if (const std::optional<std::uint32_t> epoch = epoch_of(*payload)) {
      ++stats.epoch_histogram[*epoch];
    } else {
      ++stats.stale_payloads;
    }
  }
  return stats;
}

std::string StoreStats::to_text() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "[store] %zu record(s), %s\n",
                total_records, human_bytes(total_bytes).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "[store]   loose: %zu record(s) %s\n", loose_records,
                human_bytes(loose_bytes).c_str());
  out += line;
  if (segment_files > 0) {
    const double packed =
        total_records
            ? 100.0 * static_cast<double>(total_records - loose_records) /
                  static_cast<double>(total_records)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "[store]   segments: %zu file(s), %zu indexed record(s), "
                  "%s on disk (%s dead), %.0f%% of records packed\n",
                  segment_files, segment_records,
                  human_bytes(segment_file_bytes).c_str(),
                  human_bytes(segment_dead_bytes).c_str(), packed);
    out += line;
  }
  for (const BenchUsage& b : benches) {
    std::snprintf(line, sizeof(line), "[store]   %-24s %6zu record(s) %12s\n",
                  b.bench.c_str(), b.records, human_bytes(b.bytes).c_str());
    out += line;
  }
  if (deduplicated_refs > 0) {
    std::snprintf(line, sizeof(line),
                  "[store]   %zu manifest reference(s) deduplicated by "
                  "content addressing\n",
                  deduplicated_refs);
    out += line;
  }
  for (const auto& [epoch, count] : epoch_histogram) {
    std::snprintf(line, sizeof(line),
                  "[store]   epoch %u: %zu record(s)\n", epoch, count);
    out += line;
  }
  if (stale_payloads > 0) {
    std::snprintf(line, sizeof(line),
                  "[store]   %zu stale-codec payload(s) (reclaim with "
                  "--prune)\n",
                  stale_payloads);
    out += line;
  }
  if (unreadable_records > 0) {
    std::snprintf(line, sizeof(line),
                  "[store]   %zu unreadable record(s) (reclaim with "
                  "--prune)\n",
                  unreadable_records);
    out += line;
  }
  return out;
}

std::string StoreStats::to_json(int indent) const {
  std::vector<obs::MetricSample> samples;
  const auto add = [&samples](std::string name, std::uint64_t value) {
    samples.push_back(obs::MetricSample{std::move(name), value});
  };
  add("store.total_records", total_records);
  add("store.total_bytes", total_bytes);
  add("store.loose_records", loose_records);
  add("store.loose_bytes", loose_bytes);
  add("store.segment_files", segment_files);
  add("store.segment_records", segment_records);
  add("store.segment_file_bytes", segment_file_bytes);
  add("store.segment_dead_bytes", segment_dead_bytes);
  add("store.deduplicated_refs", deduplicated_refs);
  add("store.stale_payloads", stale_payloads);
  add("store.unreadable_records", unreadable_records);
  for (const BenchUsage& b : benches) {
    add("store.bench." + b.bench + ".records", b.records);
    add("store.bench." + b.bench + ".bytes", b.bytes);
  }
  for (const auto& [epoch, count] : epoch_histogram) {
    add("store.epoch." + std::to_string(epoch) + ".records", count);
  }
  return obs::encode_metrics_json(samples, indent);
}

}  // namespace falvolt::store
