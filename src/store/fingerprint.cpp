#include "store/fingerprint.h"

#include <cstdio>

namespace falvolt::store {

Fingerprinter::Fingerprinter() {
  // The epoch is part of every fingerprint, so bumping it re-addresses
  // the whole store.
  frame("store_epoch", 'u', std::to_string(kStoreFormatEpoch));
}

void Fingerprinter::frame(const std::string& name, char tag,
                          const std::string& value) {
  // name_len ':' name tag value_len ':' value — the explicit lengths
  // make the stream prefix-free, so ("ab","c") never collides with
  // ("a","bc").
  std::string framed = std::to_string(name.size());
  framed += ':';
  framed += name;
  framed += tag;
  framed += std::to_string(value.size());
  framed += ':';
  framed += value;
  hasher_.update(framed);
}

Fingerprinter& Fingerprinter::add(const std::string& name,
                                  const std::string& value) {
  frame(name, 's', value);
  return *this;
}

Fingerprinter& Fingerprinter::add(const std::string& name,
                                  std::int64_t value) {
  frame(name, 'i', std::to_string(value));
  return *this;
}

Fingerprinter& Fingerprinter::add(const std::string& name,
                                  std::uint64_t value) {
  frame(name, 'u', std::to_string(value));
  return *this;
}

Fingerprinter& Fingerprinter::add(const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  frame(name, 'd', buf);
  return *this;
}

Fingerprinter& Fingerprinter::add(const std::string& name, bool value) {
  frame(name, 'b', value ? "1" : "0");
  return *this;
}

std::string Fingerprinter::digest() { return hasher_.hex(); }

bool is_fingerprint(const std::string& fp) {
  if (fp.size() != 64) return false;
  for (const char c : fp) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace falvolt::store
