#pragma once
// Grid manifests: the ordered (fingerprint, scenario key) list of one
// bench's full scenario grid.
//
// Every sweep that runs against a store writes its grid's manifest —
// including sharded runs, which list ALL cells, not just their own
// slice. Shards of one grid therefore write byte-identical manifests,
// and `sweep-merge` can rebuild the complete figure table in grid order
// from any one of them plus the union of the shard stores.

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace falvolt::store {

class LocalDirStore;

struct Manifest {
  std::string bench;
  /// (fingerprint, scenario key) per cell, in grid order.
  std::vector<std::pair<std::string, std::string>> entries;

  /// SHA-256 over the ordered fingerprints — identifies the grid itself
  /// (two runs of one bench with different flags get different grids,
  /// and therefore distinct manifest files in one store).
  std::string grid_digest() const;

  /// Serialized text form (see manifest.cpp for the format).
  std::string to_text() const;
};

/// Parse a serialized manifest; nullopt on any malformation (bad header,
/// foreign version, cell-count mismatch, malformed fingerprint).
std::optional<Manifest> parse_manifest(const std::string& text);

/// Path this manifest lives at inside `store`:
///   <root>/manifests/<bench>-<grid_digest[0:12]>.manifest
std::string manifest_path(const LocalDirStore& store, const Manifest& m);

/// Atomically and durably write `m` into `store` (stage + fsync +
/// rename + directory fsync, like records).
void write_manifest(const LocalDirStore& store, const Manifest& m);

/// Read one manifest file; nullopt if missing or malformed.
std::optional<Manifest> read_manifest(const std::string& path);

/// All manifest files in `store`, optionally filtered to one bench
/// (matching the `bench` header field, not the file name). Sorted paths.
std::vector<std::string> list_manifests(const LocalDirStore& store,
                                        const std::string& bench = "");

}  // namespace falvolt::store
