#pragma once
// Indexed append-only segment files: the packed record layout produced
// by `sweep_merge --compact` (compact.h) and read back through the
// SegmentStore backend. A segment replaces thousands of tiny loose
// `.rec` files with one file per compaction run:
//
//   <root>/segments/<digest12>.seg
//
//   ┌───────────────────────────────────────────────┐
//   │ record frames, concatenated verbatim           │  (record_frame.h
//   │   (identical bytes to the loose .rec files)    │   format)
//   ├───────────────────────────────────────────────┤
//   │ index: entry_count ×                           │
//   │   [raw 32-byte fingerprint | offset u64 |      │  sorted by
//   │    length u64]                                 │  fingerprint
//   ├───────────────────────────────────────────────┤
//   │ footer (56 bytes):                             │
//   │   magic u32 | epoch u32 | entry_count u64 |    │
//   │   index_offset u64 | SHA-256 of the index      │
//   └───────────────────────────────────────────────┘
//
// The name digest is the SHA-256 of the sorted fingerprint list, so the
// same record set compacts to the same file name everywhere (a re-run
// of an interrupted compaction converges instead of accumulating).
// Integers are little-endian (record_frame.h helpers). The footer and
// index are validated on open — a damaged index makes the whole segment
// read as empty (every entry degrades to recompute-on-miss) — and every
// get() still re-validates the individual record frame, so a bit flip
// in one record never poisons its neighbors. Segments are immutable
// after publication; compaction writes new ones and GC deletes fully
// dead ones whole.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/store_api.h"

namespace falvolt::store {

constexpr std::uint32_t kSegmentMagic = 0x47535646;  // "FVSG"

/// Footer size: magic u32 + epoch u32 + entry_count u64 +
/// index_offset u64 + SHA-256 of the index (32 bytes).
constexpr std::size_t kSegmentFooterBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2 + 32;

/// Bytes per index entry: raw 32-byte fingerprint + offset + length.
constexpr std::size_t kSegmentIndexEntryBytes = 32 + 8 + 8;

/// One segment file's inventory, as stats and GC see it.
struct SegmentInfo {
  std::string path;
  bool readable = false;  ///< footer + index validated (false ⇒ all miss)
  std::uint64_t file_bytes = 0;    ///< size of the .seg file on disk
  std::uint64_t record_bytes = 0;  ///< framed record bytes covered by index
  /// Indexed fingerprints with their framed-record extents, sorted.
  std::vector<std::pair<std::string, std::uint64_t>> entries;  // fp, length
};

/// Inventory every `.seg` file under `<root>/segments` (sorted paths).
/// Unreadable segments appear with readable=false and no entries.
std::vector<SegmentInfo> list_segments(const std::string& root);

/// Pack `records` — (fingerprint, raw payload) pairs — into one segment
/// under `<root>/segments`, staged in `<root>/tmp` and durably published
/// (fsync + rename + directory fsync). Returns the final path. Throws
/// on I/O failure or malformed fingerprints; `records` must be non-empty.
std::string write_segment(
    const std::string& root,
    const std::vector<std::pair<std::string, std::string>>& records);

/// Read-only StoreApi view of every valid segment under one store root.
/// Layered under the loose-object dir by open_store(), so loose records
/// shadow segmented ones and compaction can delete the loose copy only
/// after its segment is durable. Manifests live in the loose store;
/// this backend has none.
class SegmentStore : public StoreApi {
 public:
  /// Indexes `<root>/segments` at construction (missing dir ⇒ empty
  /// store). Damaged segments are skipped — their records read as
  /// misses, never as errors.
  explicit SegmentStore(std::string root);

  std::string describe() const override;
  bool writable() const override { return false; }
  bool contains(const std::string& fingerprint) const override;
  std::optional<std::string> get(
      const std::string& fingerprint) const override;
  void put(const std::string& fingerprint,
           const std::string& payload) override;
  std::vector<std::string> fingerprints() const override;
  void put_manifest(const Manifest& m) override;
  std::vector<Manifest> manifests(const std::string& bench) const override;

  std::size_t segment_count() const { return segment_files_; }

 private:
  struct Location {
    std::string path;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  std::string root_;
  std::size_t segment_files_ = 0;
  std::map<std::string, Location> index_;
};

}  // namespace falvolt::store
