#pragma once
// Streaming SHA-256 for the content-addressed result store. A scenario's
// store address and every record checksum are SHA-256 digests, so a hit
// is correct by construction (the Nix store idiom): two cells collide
// only if everything that determines their output is identical.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace falvolt::store {

/// Incremental SHA-256 (FIPS 180-4). Feed bytes with update(), then call
/// digest()/hex() exactly once.
class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest. The hasher must not be
  /// updated afterwards.
  Digest digest();

  /// Finalize and return the digest as 64 lowercase hex characters.
  std::string hex();

  static std::string to_hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: SHA-256 of `data` as lowercase hex.
std::string sha256_hex(const std::string& data);

}  // namespace falvolt::store
