#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every experiment in this repository is seeded; two runs with the same
// seed produce bit-identical results. Rng wraps a 64-bit SplitMix/PCG-style
// generator with the distribution helpers the rest of the library needs
// (uniform reals, normals, integer ranges, shuffles, and sampling without
// replacement for fault-map generation).

#include <cstdint>
#include <vector>

namespace falvolt::common {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Not cryptographically secure; intended for simulation reproducibility.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator (for per-worker streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace falvolt::common
