#pragma once
// Library version, embedded in result-store provenance records so a
// fleet operator can tell which build computed a cached cell. Bump on
// every release-worthy change; unlike store::kStoreFormatEpoch this
// NEVER invalidates cached results — it is a label, not an input.

namespace falvolt {

inline constexpr const char* kFalvoltVersion = "0.5.0";

}  // namespace falvolt
