#pragma once
// Environment-variable knobs shared by benches and tests.

#include <string>

namespace falvolt::common {

/// True when FALVOLT_FAST is set to a truthy value ("1", "true", "yes").
/// Benches use this to shrink datasets / epochs ~4x for smoke runs.
bool fast_mode();

/// Read an environment variable with a default.
std::string env_or(const std::string& name, const std::string& def);

/// Integer environment variable with a default (malformed -> default).
long long env_int_or(const std::string& name, long long def);

}  // namespace falvolt::common
