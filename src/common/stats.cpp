#include "common/stats.h"

#include <cmath>

namespace falvolt::common {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (const double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace falvolt::common
