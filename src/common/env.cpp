#include "common/env.h"

#include <cstdlib>

namespace falvolt::common {

bool fast_mode() {
  const std::string v = env_or("FALVOLT_FAST", "");
  return v == "1" || v == "true" || v == "yes";
}

std::string env_or(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : def;
}

long long env_int_or(const std::string& name, long long def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : def;
}

}  // namespace falvolt::common
