#pragma once
// Minimal CSV writer used by the figure benches to persist the series they
// print, so results can be re-plotted without re-running the experiment.

#include <fstream>
#include <string>
#include <vector>

namespace falvolt::common {

/// RFC-4180 field escaping: a field containing a comma, double quote,
/// CR, or LF is wrapped in double quotes with embedded quotes doubled;
/// every other field passes through unchanged (so existing numeric
/// output stays byte-identical).
std::string csv_escape(const std::string& field);

/// Streams rows to a CSV file. The header is written on construction.
/// Values are formatted with enough precision to round-trip floats.
/// Every cell (header included) is RFC-4180-escaped on write.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; the column count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience overload: numeric row.
  void row(const std::vector<double>& cells);

  /// Flushes and closes the file (also done by the destructor).
  void close();

  const std::string& path() const { return path_; }

  /// Format a double compactly but losslessly enough for plotting.
  static std::string format(double v);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace falvolt::common
