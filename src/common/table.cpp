#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace falvolt::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::row_numeric(const std::vector<double>& cells, int decimals) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (const double v : cells) s.push_back(format(v, decimals));
  row(std::move(s));
}

void TextTable::row_labeled(const std::string& label,
                            const std::vector<double>& cells, int decimals) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.push_back(label);
  for (const double v : cells) s.push_back(format(v, decimals));
  row(std::move(s));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c ? "  " : "");
      os << r[c];
      for (std::size_t p = r[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

std::string TextTable::format(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace falvolt::common
