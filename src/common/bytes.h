#pragma once
// Little-endian length-prefixed byte codec, shared by the scenario-result
// store payload (core/sweep.cpp) and the fleet daemon's wire protocol
// (fleet/protocol.h). Writers append fixed-width integers / doubles /
// length-prefixed strings to a std::string; ByteReader walks the same
// layout back, checking the remaining byte count before EVERY read, so a
// truncated or garbage buffer can only ever fail a read — never
// over-read, throw, or allocate from a damaged length word. That
// defensive contract is what lets both consumers treat malformed input
// as "miss / protocol error" instead of undefined behavior.

#include <cstdint>
#include <cstring>
#include <string>

namespace falvolt::common {

inline void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

inline void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

inline void put_i32(std::string& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}

inline void put_f64(std::string& b, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}

inline void put_str(std::string& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b += s;
}

/// Cursor over an encoded buffer; every read validates the remaining
/// byte count first. All reads return false (leaving `out` unspecified)
/// on underflow.
struct ByteReader {
  const std::string& bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes.size() - pos; }

  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= std::uint32_t{static_cast<unsigned char>(bytes[pos + i])}
             << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= std::uint64_t{static_cast<unsigned char>(bytes[pos + i])}
             << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool i32(std::int32_t& out) {
    std::uint32_t raw = 0;
    if (!u32(raw)) return false;
    out = static_cast<std::int32_t>(raw);
    return true;
  }

  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
  }

  bool str(std::string& out) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (len > remaining()) return false;
    out.assign(bytes, pos, len);
    pos += len;
    return true;
  }
};

}  // namespace falvolt::common
