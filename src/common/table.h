#pragma once
// Aligned plain-text table printing. Figure benches use this to emit the
// same rows/series the paper plots, in a form readable in a terminal log.

#include <string>
#include <vector>

namespace falvolt::common {

/// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Numeric convenience; values are formatted with `decimals` digits.
  void row_numeric(const std::vector<double>& cells, int decimals = 2);

  /// Mixed convenience: a leading label followed by numeric cells.
  void row_labeled(const std::string& label, const std::vector<double>& cells,
                   int decimals = 2);

  /// Render to a string (header, separator, rows).
  std::string str() const;

  /// Render to stdout.
  void print() const;

  static std::string format(double v, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace falvolt::common
