#include "common/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace falvolt::common {

CliFlags::CliFlags(std::string program) : program_(std::move(program)) {}

void CliFlags::add_int(const std::string& name, long long def,
                       const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(def), help};
}

void CliFlags::add_double(const std::string& name, double def,
                          const std::string& help) {
  std::ostringstream os;
  os << def;
  flags_[name] = Flag{Type::kDouble, os.str(), help};
}

void CliFlags::add_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  flags_[name] = Flag{Type::kString, def, help};
}

void CliFlags::add_bool(const std::string& name, bool def,
                        const std::string& help) {
  flags_[name] = Flag{Type::kBool, def ? "true" : "false", help};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" + usage());
    }
    Flag& f = it->second;
    if (f.type == Type::kBool && !has_value) {
      f.value = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    // Validate numeric flags eagerly so errors point at the flag.
    try {
      if (f.type == Type::kInt) (void)std::stoll(value);
      if (f.type == Type::kDouble) (void)std::stod(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name +
                                  " has a malformed value: " + value);
    }
    if (f.type == Type::kBool && value != "true" && value != "false") {
      throw std::invalid_argument("flag --" + name +
                                  " expects true/false, got: " + value);
    }
    f.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: --" + name);
  }
  if (it->second.type != type) {
    throw std::invalid_argument("flag type mismatch for --" + name);
  }
  return it->second;
}

long long CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Type::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Type::kDouble).value);
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Type::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Type::kBool).value == "true";
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default " << f.value << "): " << f.help << "\n";
  }
  return os.str();
}

}  // namespace falvolt::common
