#include "common/cli.h"

#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace falvolt::common {

namespace {

// Shortest round-trip formatting: the fewest significant digits whose
// std::stod gives back the exact registered double (the default ostream
// precision of 6 silently truncated defaults like 1e-7 or 0.1234567,
// while a flat max_digits10 would print 0.3 as 0.29999999999999999).
std::string format_double(double v) {
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    // stod throws out_of_range for subnormals (strtod sets ERANGE) —
    // treat that as "no round-trip at this precision", not a crash.
    try {
      if (std::stod(os.str()) == v) return os.str();
    } catch (const std::exception&) {
    }
  }
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

CliFlags::CliFlags(std::string program) : program_(std::move(program)) {}

void CliFlags::add_int(const std::string& name, long long def,
                       const std::string& help) {
  const std::string text = std::to_string(def);
  flags_[name] = Flag{Type::kInt, text, text, help};
}

void CliFlags::add_double(const std::string& name, double def,
                          const std::string& help) {
  const std::string text = format_double(def);
  flags_[name] = Flag{Type::kDouble, text, text, help};
}

void CliFlags::add_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  flags_[name] = Flag{Type::kString, def, def, help};
}

void CliFlags::add_bool(const std::string& name, bool def,
                        const std::string& help) {
  const std::string text = def ? "true" : "false";
  flags_[name] = Flag{Type::kBool, text, text, help};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" + usage());
    }
    Flag& f = it->second;
    if (f.type == Type::kBool && !has_value) {
      // Accept the two-token form `--flag false` / `--flag true`; any
      // other following token leaves the switch semantics intact (the
      // token is NOT consumed, so `--fast --epochs 3` still works).
      if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                           std::string(argv[i + 1]) == "false")) {
        f.value = argv[++i];
      } else {
        f.value = "true";
      }
      continue;
    }
    if (!has_value) {
      // A following token that is itself a flag means the value was
      // forgotten — consuming it would silently swallow that flag (e.g.
      // `--sweep-json --fast` turning "--fast" into a file name).
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    // Validate numeric flags eagerly so errors point at the flag.
    try {
      if (f.type == Type::kInt) (void)std::stoll(value);
      if (f.type == Type::kDouble) (void)std::stod(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name +
                                  " has a malformed value: " + value);
    }
    if (f.type == Type::kBool && value != "true" && value != "false") {
      throw std::invalid_argument("flag --" + name +
                                  " expects true/false, got: " + value);
    }
    f.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: --" + name);
  }
  if (it->second.type != type) {
    throw std::invalid_argument("flag type mismatch for --" + name);
  }
  return it->second;
}

long long CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Type::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Type::kDouble).value);
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Type::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Type::kBool).value == "true";
}

std::vector<std::pair<std::string, std::string>> CliFlags::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(flags_.size());
  for (const auto& [name, f] : flags_) out.emplace_back(name, f.value);
  return out;  // flags_ is an ordered map: already sorted by name
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default " << f.def << "): " << f.help << "\n";
  }
  return os.str();
}

}  // namespace falvolt::common
