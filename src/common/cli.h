#pragma once
// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches
// (`--fast`). Unknown flags raise; `--help` prints registered flags.

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace falvolt::common {

/// Declarative CLI flag set.
///
///   CliFlags cli("fig7_mitigation");
///   cli.add_int("epochs", 8, "retraining epochs");
///   cli.add_bool("fast", false, "shrink workloads ~4x");
///   cli.parse(argc, argv);
///   int epochs = cli.get_int("epochs");
class CliFlags {
 public:
  explicit CliFlags(std::string program);

  void add_int(const std::string& name, long long def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, const std::string& def,
                  const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);

  /// Parse argv. Returns false (after printing usage) if --help was given.
  /// Throws std::invalid_argument on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Every registered flag as (name, canonical value), sorted by name.
  /// Values reflect the parsed command line (defaults where unset) in
  /// the same canonical text form usage() prints — the input the result
  /// store fingerprints a bench invocation by.
  std::vector<std::pair<std::string, std::string>> items() const;

  std::string usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual value (mutated by parse)
    std::string def;    // registered default, kept verbatim for usage()
    std::string help;
  };
  const Flag& find(const std::string& name, Type type) const;

  std::string program_;
  std::map<std::string, Flag> flags_;
};

}  // namespace falvolt::common
