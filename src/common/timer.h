#pragma once
// Wall-clock timing for training/retraining epoch reporting.

#include <chrono>

namespace falvolt::common {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads elapsed
/// time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace falvolt::common
