#include "common/csv.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace falvolt::common {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (const double v : cells) s.push_back(format(v));
  row(s);
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

std::string CsvWriter::format(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace falvolt::common
