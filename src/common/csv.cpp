#include "common/csv.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace falvolt::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (const double v : cells) s.push_back(format(v));
  row(s);
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

std::string CsvWriter::format(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace falvolt::common
