#pragma once
// Small statistics helpers: experiments average accuracy over multiple
// fault maps (the paper runs 8 iterations per point), so mean / stddev /
// min / max over a vector of samples is the common reduction.

#include <cstddef>
#include <vector>

namespace falvolt::common {

/// Summary statistics over a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Compute summary statistics; returns zeros for an empty input.
Summary summarize(const std::vector<double>& samples);

/// Streaming accumulator (Welford) for when samples are produced one at a
/// time and storing them all is unnecessary.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace falvolt::common
