#pragma once
// Minimal JSON string escaping, shared by every hand-rolled JSON writer
// in the repo (ResultTable::to_json, the fleet summary). Escapes the
// two mandatory metachars, keeps '\n' readable as \n, and \u-escapes
// the remaining control characters.

#include <cstdio>
#include <string>

namespace falvolt::common {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace falvolt::common
