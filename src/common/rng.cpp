#include "common/rng.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument(
        "Rng::sample_without_replacement: k must be <= n");
  }
  // Floyd's algorithm: O(k) memory, no O(n) scratch for large n (e.g. a
  // 256x256 PE grid has 65536 candidates but typical k is tens).
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(j + 1));
    bool seen = false;
    for (const auto v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace falvolt::common
