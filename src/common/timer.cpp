#include "common/timer.h"

// Header-only; this translation unit exists so the build exposes the module
// symbol uniformly and the header is compiled standalone at least once.
