#include "io/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/fault_injector.h"

namespace fs = std::filesystem;

namespace falvolt::io {

std::optional<std::string> Env::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return std::nullopt;
  return bytes;
}

std::optional<std::string> Env::read_range(const std::string& path,
                                           std::uint64_t offset,
                                           std::uint64_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(offset));
  std::string bytes(length, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!in) return std::nullopt;
  return bytes;
}

std::optional<std::uint64_t> Env::file_size(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<std::uint64_t>(size);
}

bool Env::write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

bool Env::rename_file(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

bool Env::fsync_path(const std::string& path) {
  // Read-only open is enough for fsync on every platform we build for
  // (Linux/macOS).
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool Env::unlink_file(const std::string& path) {
  std::error_code ec;
  return fs::remove(path, ec) && !ec;
}

bool Env::mkdirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec;
}

namespace {

Env& real_env_instance() {
  static Env* instance = new Env();  // immortal: cached refs never dangle
  return *instance;
}

std::atomic<Env*> g_env{nullptr};

}  // namespace

Env& real_env() { return real_env_instance(); }

Env& env() {
  Env* e = g_env.load(std::memory_order_acquire);
  return e ? *e : real_env_instance();
}

void set_env(Env* e) { g_env.store(e, std::memory_order_release); }

void atomic_publish(const std::string& staging_dir, const std::string& prefix,
                    const std::string& final_path, const std::string& bytes) {
  Env& e = env();
  if (!e.mkdirs(staging_dir)) {
    throw std::runtime_error("atomic_publish: cannot create staging dir " +
                             staging_dir);
  }
  // Unique staging name: pid + a process-wide counter. Concurrent
  // writers (threads of one sweep, or several shard processes sharing a
  // store) each stage privately and race only on the final rename,
  // which is atomic.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      (fs::path(staging_dir) /
       (prefix + "." + std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1)) + ".tmp"))
          .string();

  // A plug pulled before anything is staged loses nothing.
  FALVOLT_PTP();
  if (!e.write_file(tmp, bytes)) {
    e.unlink_file(tmp);
    throw std::runtime_error("atomic_publish: cannot stage " + tmp);
  }
  // Staged but not durable: a crash here leaves only tmp garbage
  // (reclaimed by GC), never a visible partial record.
  FALVOLT_PTP(FaultSensitivity::kHigh);
  // Data first: the rename must never publish a name whose bytes are
  // still only in the page cache.
  if (!e.fsync_path(tmp)) {
    e.unlink_file(tmp);
    throw std::runtime_error("atomic_publish: cannot fsync " + tmp);
  }
  // Durable bytes, not yet visible under the final name.
  FALVOLT_PTP(FaultSensitivity::kHigh);
  if (!e.rename_file(tmp, final_path)) {
    e.unlink_file(tmp);
    throw std::runtime_error("atomic_publish: cannot publish " + final_path);
  }
  // Visible but the directory entry itself is not yet durable — without
  // the fsync below a host crash can forget the rename and lose a
  // record the writer already reported durable.
  FALVOLT_PTP(FaultSensitivity::kHigh);
  const std::string dir = fs::path(final_path).parent_path().string();
  if (!e.fsync_path(dir.empty() ? "." : dir)) {
    throw std::runtime_error("atomic_publish: cannot fsync directory of " +
                             final_path);
  }
  // Fully published; a crash now must find the complete record.
  FALVOLT_PTP();
}

}  // namespace falvolt::io
