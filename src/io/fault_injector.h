#pragma once
// io::FaultInjector — PullThePlug-style fault injection for the store
// and fleet pipeline (the shape of Katana's tsuba FaultTest.h: FaultMode
// probability hooks plus PtP plug-pull points at every I/O boundary).
//
// We simulate faulty chips all day; this is where we fault our own
// infrastructure. Arm a FaultSpec and every Env write boundary (see
// env.h) becomes a potential fault site:
//
//   torn writes   a write_file persists only a prefix of its bytes and
//                 LIES that it succeeded — models lost sector writes
//                 and firmware write caches. The frame validation of
//                 the store must degrade the damage to "recompute".
//   bit flips     one random bit of the written (or, with read=1, the
//                 returned) bytes flipped — models silent media
//                 corruption. Same degrade contract.
//   plug pulls    with kill=1, a triggered fault point SIGKILLs the
//                 process (no unwinding, no flushing — the plug is
//                 pulled). FALVOLT_PTP() marks the kill points: the
//                 boundaries of atomic_publish and the sweep engine's
//                 store-put path. A crashed run must resume to
//                 byte-identical tables, recomputing only cells whose
//                 records never published.
//
// Fault points fire per FaultMode: Independent (each point faults with
// probability p; High-sensitivity points — the ones inside a publish
// window — use 10*p, clamped to 1) or RunLength (exactly the Nth armed
// point faults, counted from 1 — the deterministic way to park a crash
// on one specific boundary). The injector draws from one rng seeded by
// spec.seed, so a given spec over a serialized I/O sequence (e.g.
// --sweep-parallel 1) is fully deterministic; under concurrent workers
// the per-run fault COUNT distribution is seed-stable but the
// interleaving decides which op draws which number.
//
// Execution-only by construction: the spec is configured via --faults /
// $FALVOLT_FAULTS, which is excluded from cell fingerprints like every
// other execution knob — an injected run and a clean run address the
// same cells, which is exactly what lets the resume harness diff them.
//
// Activity is surfaced through obs/metrics (io.faults.injected,
// io.faults.torn_writes, io.faults.bitflips, io.ptp.armed) and the
// FaultTestReport-style summary line of fault_report_line().

#include <cstdint>
#include <mutex>
#include <random>
#include <string>

#include "io/env.h"

namespace falvolt::io {

enum class FaultMode {
  kNone,         // no faults
  kIndependent,  // each fault point fires with probability p
  kRunLength,    // exactly the run_length-th armed point fires (from 1)
};

/// How eagerly a PtP point fires under Independent mode: kHigh points
/// sit inside publish windows (staged-but-not-durable, renamed-but-not-
/// fsynced) where a crash is most interesting, and fire at 10*p.
enum class FaultSensitivity { kNormal, kHigh };

struct FaultSpec {
  FaultMode mode = FaultMode::kNone;
  double p = 0.0;                // Independent: per-point probability
  std::uint64_t run_length = 0;  // RunLength: 1-based point index
  std::uint64_t seed = 1;        // rng seed (deterministic per run)
  bool torn_writes = true;       // truncate a faulted write
  bool bitflips = true;          // flip one bit of a faulted write
  bool corrupt_reads = false;    // flip one bit of a faulted read
  bool kill = false;             // faulted PtP/write points pull the plug
  bool enabled() const { return mode != FaultMode::kNone; }
};

/// Parse a --faults spec:
///   mode=independent,p=0.01,seed=7
///   mode=runlength,runlen=12,kill=1,torn=0,bitflip=0
/// Keys: mode (none|independent|runlength; required), p ((0,1];
/// Independent only), runlen (>=1; RunLength only), seed (default 1),
/// torn/bitflip/read/kill (0|1). "" and "none" parse to a disabled
/// spec. Throws std::invalid_argument on anything malformed — drivers
/// reject the spec before any work.
FaultSpec parse_fault_spec(const std::string& spec);

/// Canonical one-line rendering of a spec (logs and the report line).
std::string to_string(const FaultSpec& spec);

/// Install a FaultInjector for `spec` as the process environment and
/// zero the report. No-op for a disabled spec. Not reentrant: arming
/// while armed rearms with fresh counters.
void arm_faults(const FaultSpec& spec);

/// Restore the real environment (keeps the report readable).
void disarm_faults();

bool faults_armed();

struct FaultReport {
  FaultSpec spec;
  std::uint64_t points = 0;       ///< fault points evaluated while armed
  std::uint64_t injected = 0;     ///< points that fired
  std::uint64_t torn_writes = 0;  ///< fired as a torn write
  std::uint64_t bitflips = 0;     ///< fired as a bit flip (write or read)
  std::uint64_t ptp_armed = 0;    ///< PtP points passed while armed
  std::uint64_t kills = 0;        ///< plug pulls requested (process died
                                  ///< there unless the kill hook is stubbed)
};

/// Snapshot of the current (or last) armed session's activity.
FaultReport fault_report();

/// FaultTestReport-style summary, e.g.
///   [faults] mode=independent,p=0.01,seed=7: 210 point(s), 3 injected
///   (1 torn, 2 bitflip), 96 PtP point(s) armed, 0 kill(s)
std::string fault_report_line();

/// PullThePlug point: a no-op unless faults are armed; then counted,
/// and — if the mode fires here and kill=1 — the process dies by
/// SIGKILL without unwinding. Mark every boundary where "the machine
/// lost power here" is a scenario the store must survive.
void ptp(const char* file, int line,
         FaultSensitivity sensitivity = FaultSensitivity::kNormal);

#define FALVOLT_PTP(...) \
  ::falvolt::io::ptp(__FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__)

/// The injecting environment. Usually managed through arm_faults();
/// tests may instantiate and set_env() one directly.
class FaultInjector final : public Env {
 public:
  explicit FaultInjector(FaultSpec spec);

  std::optional<std::string> read_file(const std::string& path) override;
  std::optional<std::string> read_range(const std::string& path,
                                        std::uint64_t offset,
                                        std::uint64_t length) override;
  bool write_file(const std::string& path, const std::string& bytes) override;

  const FaultSpec& spec() const { return spec_; }

 private:
  friend void ptp(const char* file, int line, FaultSensitivity sensitivity);
  friend void arm_faults(const FaultSpec& spec);
  friend FaultReport fault_report();

  /// One fault-point decision: counts the point and returns whether it
  /// fires. Thread-safe (one rng, one lock — fault points are file
  /// operations, never hot).
  bool should_fault(FaultSensitivity sensitivity);

  /// Uniform integer in [0, n) from the injector's stream.
  std::uint64_t draw(std::uint64_t n);

  /// Pull the plug: SIGKILL self (no unwinding). Counted first so a
  /// parent inspecting a dead child's store can correlate.
  [[noreturn]] void pull_the_plug();

  /// Corrupt `bytes` in place per the spec (torn truncation or a bit
  /// flip); returns what actually happened for the counters.
  enum class Damage { kNone, kTorn, kBitflip };
  Damage corrupt(std::string& bytes);

  FaultSpec spec_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  std::uint64_t points_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t torn_ = 0;
  std::uint64_t bitflips_ = 0;
  std::uint64_t ptp_armed_ = 0;
  std::uint64_t kills_ = 0;
};

}  // namespace falvolt::io
