#include "io/fault_injector.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace falvolt::io {

namespace {

// The armed injector. Owned here so arm/disarm manage lifetime; raw
// set_env(&*g) installs it as the process environment. Guarded by
// g_arm_mu — arming is a per-run setup action, never hot.
std::mutex g_arm_mu;
std::unique_ptr<FaultInjector> g_injector;

obs::Counter& faults_injected_counter() {
  static obs::Counter& c = obs::counter("io.faults.injected");
  return c;
}
obs::Counter& faults_torn_counter() {
  static obs::Counter& c = obs::counter("io.faults.torn_writes");
  return c;
}
obs::Counter& faults_bitflip_counter() {
  static obs::Counter& c = obs::counter("io.faults.bitflips");
  return c;
}
obs::Counter& ptp_armed_counter() {
  static obs::Counter& c = obs::counter("io.ptp.armed");
  return c;
}

bool parse_bool01(const std::string& key, const std::string& value) {
  if (value == "0") return false;
  if (value == "1") return true;
  throw std::invalid_argument("--faults: " + key + " must be 0 or 1, got '" +
                              value + "'");
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::invalid_argument("--faults: " + key +
                                " must be an unsigned integer, got '" + value +
                                "'");
  }
  return out;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty() || spec == "none") return out;

  bool saw_mode = false;
  bool saw_p = false;
  bool saw_runlen = false;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--faults: expected key=value, got '" + item +
                                  "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "mode") {
      saw_mode = true;
      if (value == "none") {
        out.mode = FaultMode::kNone;
      } else if (value == "independent") {
        out.mode = FaultMode::kIndependent;
      } else if (value == "runlength") {
        out.mode = FaultMode::kRunLength;
      } else {
        throw std::invalid_argument(
            "--faults: mode must be none|independent|runlength, got '" + value +
            "'");
      }
    } else if (key == "p") {
      saw_p = true;
      std::size_t used = 0;
      double p = 0.0;
      try {
        p = std::stod(value, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != value.size() || value.empty() || !(p > 0.0) || p > 1.0) {
        throw std::invalid_argument("--faults: p must be in (0,1], got '" +
                                    value + "'");
      }
      out.p = p;
    } else if (key == "runlen") {
      saw_runlen = true;
      out.run_length = parse_u64(key, value);
      if (out.run_length == 0) {
        throw std::invalid_argument("--faults: runlen must be >= 1");
      }
    } else if (key == "seed") {
      out.seed = parse_u64(key, value);
    } else if (key == "torn") {
      out.torn_writes = parse_bool01(key, value);
    } else if (key == "bitflip") {
      out.bitflips = parse_bool01(key, value);
    } else if (key == "read") {
      out.corrupt_reads = parse_bool01(key, value);
    } else if (key == "kill") {
      out.kill = parse_bool01(key, value);
    } else {
      throw std::invalid_argument("--faults: unknown key '" + key + "'");
    }
  }
  if (!saw_mode) {
    throw std::invalid_argument("--faults: missing required key 'mode'");
  }
  if (out.mode == FaultMode::kIndependent && !saw_p) {
    throw std::invalid_argument("--faults: mode=independent requires p=");
  }
  if (out.mode == FaultMode::kRunLength && !saw_runlen) {
    throw std::invalid_argument("--faults: mode=runlength requires runlen=");
  }
  if (out.mode != FaultMode::kIndependent && saw_p) {
    throw std::invalid_argument("--faults: p= only applies to mode=independent");
  }
  if (out.mode != FaultMode::kRunLength && saw_runlen) {
    throw std::invalid_argument(
        "--faults: runlen= only applies to mode=runlength");
  }
  return out;
}

std::string to_string(const FaultSpec& spec) {
  if (!spec.enabled()) return "mode=none";
  std::ostringstream out;
  if (spec.mode == FaultMode::kIndependent) {
    out << "mode=independent,p=" << spec.p;
  } else {
    out << "mode=runlength,runlen=" << spec.run_length;
  }
  out << ",seed=" << spec.seed;
  if (!spec.torn_writes) out << ",torn=0";
  if (!spec.bitflips) out << ",bitflip=0";
  if (spec.corrupt_reads) out << ",read=1";
  if (spec.kill) out << ",kill=1";
  return out.str();
}

void arm_faults(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  set_env(nullptr);
  g_injector.reset();
  if (!spec.enabled()) return;
  g_injector = std::make_unique<FaultInjector>(spec);
  set_env(g_injector.get());
}

void disarm_faults() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  // Keep the injector alive for fault_report(); only uninstall it.
  set_env(nullptr);
}

bool faults_armed() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  return g_injector != nullptr && &env() == g_injector.get();
}

FaultReport fault_report() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  FaultReport r;
  if (!g_injector) return r;
  FaultInjector& inj = *g_injector;
  std::lock_guard<std::mutex> inner(inj.mu_);
  r.spec = inj.spec_;
  r.points = inj.points_;
  r.injected = inj.injected_;
  r.torn_writes = inj.torn_;
  r.bitflips = inj.bitflips_;
  r.ptp_armed = inj.ptp_armed_;
  r.kills = inj.kills_;
  return r;
}

std::string fault_report_line() {
  const FaultReport r = fault_report();
  std::ostringstream out;
  out << "[faults] " << to_string(r.spec) << ": " << r.points << " point(s), "
      << r.injected << " injected (" << r.torn_writes << " torn, " << r.bitflips
      << " bitflip), " << r.ptp_armed << " PtP point(s) armed, " << r.kills
      << " kill(s)";
  return out.str();
}

void ptp(const char* file, int line, FaultSensitivity sensitivity) {
  // Snapshot the installed injector; a disarm between the check and the
  // call only means this point counts against a session that just
  // ended, which is fine — PtP points are advisory markers, not state.
  FaultInjector* inj = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_arm_mu);
    if (g_injector && &env() == g_injector.get()) inj = g_injector.get();
  }
  if (!inj) return;
  ptp_armed_counter().add(1);
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(inj->mu_);
    ++inj->ptp_armed_;
    fire = inj->should_fault(sensitivity);
  }
  if (!fire) return;
  faults_injected_counter().add(1);
  if (inj->spec_.kill) {
    std::fprintf(stderr, "[faults] PullThePlug at %s:%d\n", file, line);
    std::fflush(stderr);
    inj->pull_the_plug();
  }
}

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(spec), rng_(spec.seed) {}

bool FaultInjector::should_fault(FaultSensitivity sensitivity) {
  // Callers hold mu_.
  ++points_;
  bool fire = false;
  switch (spec_.mode) {
    case FaultMode::kNone:
      break;
    case FaultMode::kIndependent: {
      double p = spec_.p;
      if (sensitivity == FaultSensitivity::kHigh) p = std::min(1.0, 10.0 * p);
      fire = std::bernoulli_distribution(p)(rng_);
      break;
    }
    case FaultMode::kRunLength:
      fire = points_ == spec_.run_length;
      break;
  }
  if (fire) ++injected_;
  return fire;
}

std::uint64_t FaultInjector::draw(std::uint64_t n) {
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(rng_);
}

void FaultInjector::pull_the_plug() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++kills_;
  }
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be caught; if we are somehow still alive, stop hard.
  ::_exit(137);
}

FaultInjector::Damage FaultInjector::corrupt(std::string& bytes) {
  // Callers hold mu_. Pick among the enabled damage kinds; empty
  // payloads can only be "torn" to stay empty, which is a no-op.
  const bool can_tear = spec_.torn_writes && !bytes.empty();
  const bool can_flip = spec_.bitflips && !bytes.empty();
  if (!can_tear && !can_flip) return Damage::kNone;
  const bool tear = can_tear && (!can_flip || draw(2) == 0);
  if (tear) {
    bytes.resize(draw(bytes.size()));  // keep [0, size) bytes of prefix
    ++torn_;
    return Damage::kTorn;
  }
  const std::uint64_t bit = draw(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  ++bitflips_;
  return Damage::kBitflip;
}

std::optional<std::string> FaultInjector::read_file(const std::string& path) {
  auto bytes = Env::read_file(path);
  if (!spec_.corrupt_reads || !bytes) return bytes;
  bool fire = false;
  Damage damage = Damage::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fire = should_fault(FaultSensitivity::kNormal);
    if (fire) {
      // Read corruption is always a bit flip (a torn read is just a
      // short read the caller already treats as failure).
      if (!bytes->empty()) {
        const std::uint64_t bit = draw(bytes->size() * 8);
        (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        ++bitflips_;
        damage = Damage::kBitflip;
      }
    }
  }
  if (fire) {
    faults_injected_counter().add(1);
    if (damage == Damage::kBitflip) faults_bitflip_counter().add(1);
    if (spec_.kill) pull_the_plug();
  }
  return bytes;
}

std::optional<std::string> FaultInjector::read_range(const std::string& path,
                                                     std::uint64_t offset,
                                                     std::uint64_t length) {
  auto bytes = Env::read_range(path, offset, length);
  if (!spec_.corrupt_reads || !bytes) return bytes;
  bool fire = false;
  Damage damage = Damage::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fire = should_fault(FaultSensitivity::kNormal);
    if (fire && !bytes->empty()) {
      const std::uint64_t bit = draw(bytes->size() * 8);
      (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      ++bitflips_;
      damage = Damage::kBitflip;
    }
  }
  if (fire) {
    faults_injected_counter().add(1);
    if (damage == Damage::kBitflip) faults_bitflip_counter().add(1);
    if (spec_.kill) pull_the_plug();
  }
  return bytes;
}

bool FaultInjector::write_file(const std::string& path,
                               const std::string& bytes) {
  bool fire = false;
  Damage damage = Damage::kNone;
  std::string damaged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fire = should_fault(FaultSensitivity::kNormal);
    if (fire) {
      damaged = bytes;
      damage = corrupt(damaged);
    }
  }
  if (!fire || damage == Damage::kNone) {
    // Not fired, or fired with every damage kind disabled (kill-only
    // specs): the write itself goes through clean.
    if (fire) faults_injected_counter().add(1);
    if (fire && spec_.kill) {
      // Plug pulled INSTEAD of the write: the bytes never reach disk.
      pull_the_plug();
    }
    return Env::write_file(path, bytes);
  }
  faults_injected_counter().add(1);
  if (damage == Damage::kTorn) faults_torn_counter().add(1);
  if (damage == Damage::kBitflip) faults_bitflip_counter().add(1);
  // Persist the damaged bytes, then either die (plug pulled mid-write)
  // or LIE that the write succeeded (silent corruption) — the reader's
  // frame validation owns turning this into "recompute".
  const bool ok = Env::write_file(path, damaged);
  if (spec_.kill) pull_the_plug();
  return ok;
}

}  // namespace falvolt::io
