#pragma once
// io::Env — the process-wide injectable I/O environment behind every
// durable byte the store stack writes or reads.
//
// The store's crash-safety story (atomic tmp+rename publishes, fsync'd
// directory entries, degrade-to-recompute reads) was previously claimed
// by construction but never exercised: nothing could tear a write, flip
// a bit, or pull the plug between a rename and its directory fsync. Env
// is that seam. Every file-content operation of the store stack —
// record/manifest/segment reads and writes, renames, fsyncs, unlinks,
// directory creation — goes through the one process-wide env(), whose
// default implementation is a straight passthrough to the real
// filesystem. Installing an io::FaultInjector (fault_injector.h)
// replaces it with an environment that injects torn writes, bit flips,
// and PullThePlug process kills at exactly these boundaries, which is
// how tests/test_fault_injection.cpp and the CI crash smoke prove the
// guarantees instead of asserting them.
//
// Scope: Env covers file CONTENT operations — the ones whose partial or
// reordered effects a crash can expose. Directory listing (enumerating
// records, manifests, segments) stays on std::filesystem: a listing is
// re-derived on every call and has no persistent effect to tear.
//
// Overhead: one relaxed atomic pointer load plus a virtual call per
// file operation — noise next to the file I/O itself, so the seam costs
// nothing when no injector is installed (the perf gate holds either
// way).

#include <cstdint>
#include <optional>
#include <string>

namespace falvolt::io {

/// The injectable environment. The base class IS the real environment
/// (plain POSIX/std::filesystem behavior); an injector overrides the
/// write-side hooks and delegates the real work back to the base.
class Env {
 public:
  virtual ~Env() = default;

  /// Whole-file read; nullopt when the file cannot be opened or fully
  /// read. Never throws.
  virtual std::optional<std::string> read_file(const std::string& path);

  /// Exactly `length` bytes at `offset`; nullopt on open failure or a
  /// short read. Never throws.
  virtual std::optional<std::string> read_range(const std::string& path,
                                                std::uint64_t offset,
                                                std::uint64_t length);

  /// Size of a regular file; nullopt when it does not exist (the
  /// miss-vs-degraded probe of the read path).
  virtual std::optional<std::uint64_t> file_size(const std::string& path);

  /// Create/truncate `path` with exactly `bytes` (write + flush +
  /// close). False on any failure — a partial file may remain; callers
  /// unlink it.
  virtual bool write_file(const std::string& path, const std::string& bytes);

  /// Atomic rename; false on failure.
  virtual bool rename_file(const std::string& from, const std::string& to);

  /// fsync the file or directory at `path`; false on failure.
  virtual bool fsync_path(const std::string& path);

  /// Remove one file; false when nothing was removed.
  virtual bool unlink_file(const std::string& path);

  /// mkdir -p; false on failure (an existing directory is success).
  virtual bool mkdirs(const std::string& path);
};

/// The passthrough environment (immortal).
Env& real_env();

/// The current environment — real_env() unless an injector is
/// installed. One relaxed load; safe from any thread.
Env& env();

/// Install `e` as the process-wide environment (nullptr restores the
/// real one). The pointed-to Env must outlive the installation; callers
/// (bench FaultScope, tests) disarm before destroying it.
void set_env(Env* e);

/// THE atomic-publish idiom, shared by records, manifests, and segments
/// (previously four hand-rolled copies): stage `bytes` into a uniquely
/// named "<prefix>.<pid>.<seq>.tmp" file under `staging_dir` (created
/// if missing), fsync the staged bytes, rename onto `final_path`
/// (atomic — readers only ever see the complete file), then fsync the
/// containing directory so a host crash after return cannot forget the
/// rename. Throws std::runtime_error on failure, removing the staged
/// file; on return the publish is durable. Carries PullThePlug kill
/// points before/between/after every step, so the crash harness can
/// pull the plug at each boundary and assert that a reader never
/// observes a partial record under its final name.
void atomic_publish(const std::string& staging_dir, const std::string& prefix,
                    const std::string& final_path, const std::string& bytes);

}  // namespace falvolt::io
