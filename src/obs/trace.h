#pragma once
// obs::trace — Chrome trace-event JSON emitter (chrome://tracing /
// Perfetto "trace event format", JSON Object variant).
//
// Tracing is off by default and costs one relaxed atomic load per
// TraceSpan construction while off. When enabled (trace_start, driven
// by --trace <file> or $FALVOLT_TRACE), spans record complete ("ph":
// "X") events — name, category, microsecond start/duration, a stable
// small per-thread track id, and optional key/value args — into a
// process-global buffer; trace_stop() writes the JSON file in one
// pass, including "M" thread_name metadata events so Perfetto labels
// the tracks.
//
// Granularity contract: spans are COARSE — a sweep cell, a baseline
// train, a store read/write. Never wrap a per-row or per-chunk kernel
// loop in a span (that is what obs::Counter is for); a fleet run emits
// thousands of events, not millions.
//
// Like metrics, tracing is schedule-only by construction: it observes
// wall time and never touches cell values, fingerprints, or tables —
// asserted by the trace-on/off byte-identity tests.

#include <cstdint>
#include <string>

namespace falvolt::obs {

/// True while a trace file is being recorded. One relaxed load.
bool trace_enabled() noexcept;

/// Begin recording to `path`. The file is opened (and truncated)
/// immediately so an unwritable path fails before hours of compute;
/// events buffer in memory until trace_stop. Throws std::runtime_error
/// on I/O failure and std::logic_error if already recording.
void trace_start(const std::string& path);

/// Write the buffered events as Chrome trace JSON and stop recording.
/// No-op when not recording. Returns the number of events written.
std::size_t trace_stop();

/// Resolve the trace destination for a driver: `flag_value` ("none"
/// disables, non-empty wins), else $FALVOLT_TRACE, else "" (disabled).
std::string resolve_trace_path(const std::string& flag_value);

/// Stable small id of the calling thread's trace track (assigned on
/// first use, in thread-creation order; the main thread is usually 0).
int trace_thread_id();

/// Label the calling thread's track in the trace ("worker 3",
/// "main"). Last write wins; no-op while tracing is off.
void set_trace_thread_name(const std::string& name);

/// RAII complete-event span. Construction while tracing is off is a
/// single relaxed load and the span stays inert (args become no-ops).
/// Args must be added before the span ends; they render into the
/// event's "args" object.
class TraceSpan {
 public:
  /// `category` must be a string literal (stored by pointer).
  TraceSpan(const char* category, std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, int value);
  void arg(const char* key, bool value);

 private:
  void add_arg_key(const char* key);

  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  double start_us_ = 0.0;
  std::string args_json_;  // pre-rendered "k": v pairs, comma-joined
};

}  // namespace falvolt::obs
