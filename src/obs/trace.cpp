#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/env.h"
#include "common/json.h"

namespace falvolt::obs {

namespace {

struct TraceEvent {
  const char* category;
  std::string name;
  double ts_us;
  double dur_us;
  int tid;
  std::string args_json;
};

struct TraceState {
  std::mutex mu;
  std::atomic<bool> enabled{false};
  std::string path;
  std::chrono::steady_clock::time_point epoch;
  std::vector<TraceEvent> events;
  std::map<int, std::string> thread_names;
  int max_tid_seen = -1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // immortal
  return *s;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().epoch)
      .count();
}

std::string json_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0.0 ? 0.0 : us);
  return buf;
}

}  // namespace

bool trace_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

int trace_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void set_trace_thread_name(const std::string& name) {
  if (!trace_enabled()) return;
  TraceState& s = state();
  const int tid = trace_thread_id();
  std::lock_guard<std::mutex> lock(s.mu);
  s.thread_names[tid] = name;
}

void trace_start(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.enabled.load(std::memory_order_relaxed)) {
    throw std::logic_error("obs: trace already recording to " + s.path);
  }
  // Open-and-truncate now: an unwritable --trace path must fail before
  // the sweep, exactly like an unwritable --sweep-json.
  std::ofstream probe(path, std::ios::trunc);
  if (!probe) {
    throw std::runtime_error("obs: cannot open trace path " + path);
  }
  probe.close();
  s.path = path;
  s.epoch = std::chrono::steady_clock::now();
  s.events.clear();
  s.thread_names.clear();
  s.max_tid_seen = -1;
  s.enabled.store(true, std::memory_order_release);
}

std::size_t trace_stop() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.enabled.load(std::memory_order_relaxed)) return 0;
  s.enabled.store(false, std::memory_order_release);

  std::ofstream out(s.path, std::ios::trunc);
  if (!out) {
    // The path probed writable at start; losing it mid-run (deleted
    // parent dir) degrades to a dropped trace, never a failed sweep.
    std::fprintf(stderr, "[obs] cannot write trace %s — dropped\n",
                 s.path.c_str());
    s.events.clear();
    return 0;
  }
  const int pid = static_cast<int>(::getpid());
  out << "{\"traceEvents\": [\n";
  bool first = true;
  // Thread-track metadata first: every tid that emitted an event gets a
  // label (explicit set_trace_thread_name, else "thread <tid>").
  for (int tid = 0; tid <= s.max_tid_seen; ++tid) {
    const auto it = s.thread_names.find(tid);
    const std::string name =
        it != s.thread_names.end() ? it->second
                                   : "thread " + std::to_string(tid);
    out << (first ? "" : ",\n") << "  {\"name\": \"thread_name\", "
        << "\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"args\": {\"name\": \"" << common::json_escape(name)
        << "\"}}";
    first = false;
  }
  for (const TraceEvent& e : s.events) {
    out << (first ? "" : ",\n") << "  {\"name\": \""
        << common::json_escape(e.name) << "\", \"cat\": \"" << e.category
        << "\", \"ph\": \"X\", \"ts\": " << json_us(e.ts_us)
        << ", \"dur\": " << json_us(e.dur_us) << ", \"pid\": " << pid
        << ", \"tid\": " << e.tid;
    if (!e.args_json.empty()) {
      out << ", \"args\": {" << e.args_json << "}";
    }
    out << "}";
    first = false;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  const std::size_t n = s.events.size();
  s.events.clear();
  s.thread_names.clear();
  return n;
}

std::string resolve_trace_path(const std::string& flag_value) {
  if (flag_value == "none") return "";
  if (!flag_value.empty()) return flag_value;
  return common::env_or("FALVOLT_TRACE", "");
}

TraceSpan::TraceSpan(const char* category, std::string name)
    : active_(trace_enabled()),
      category_(category),
      name_(std::move(name)) {
  if (active_) start_us_ = now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceState& s = state();
  const double end_us = now_us();
  const int tid = trace_thread_id();
  std::lock_guard<std::mutex> lock(s.mu);
  // trace_stop may have raced us; events after the stop are dropped
  // rather than resurrected into the next trace.
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  if (tid > s.max_tid_seen) s.max_tid_seen = tid;
  s.events.push_back(TraceEvent{category_, std::move(name_), start_us_,
                                end_us - start_us_, tid,
                                std::move(args_json_)});
}

void TraceSpan::add_arg_key(const char* key) {
  if (!args_json_.empty()) args_json_ += ", ";
  args_json_ += '"';
  args_json_ += common::json_escape(key);
  args_json_ += "\": ";
}

void TraceSpan::arg(const char* key, const std::string& value) {
  if (!active_) return;
  add_arg_key(key);
  args_json_ += '"';
  args_json_ += common::json_escape(value);
  args_json_ += '"';
}

void TraceSpan::arg(const char* key, const char* value) {
  arg(key, std::string(value));
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!active_) return;
  add_arg_key(key);
  args_json_ += std::to_string(value);
}

void TraceSpan::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  add_arg_key(key);
  args_json_ += std::to_string(value);
}

void TraceSpan::arg(const char* key, int value) {
  arg(key, static_cast<std::int64_t>(value));
}

void TraceSpan::arg(const char* key, bool value) {
  if (!active_) return;
  add_arg_key(key);
  args_json_ += value ? "true" : "false";
}

}  // namespace falvolt::obs
