#pragma once
// obs::metrics — process-wide named counters, gauges, and scoped timers
// for the sweep engine, the store stack, and the compute kernels.
//
// Design constraints, in order:
//
//  1. SCHEDULE-ONLY. Metrics observe execution; they must never feed
//     back into it. Nothing in this module may influence a cell value,
//     a fingerprint, or a figure table — counters are excluded from the
//     store codec and from ResultTable CSV/JSON by construction, and the
//     byte-identity tests (test_obs.cpp) assert tables match with
//     telemetry on or off.
//  2. NEAR-FREE ON HOT PATHS. Counter::add is one relaxed atomic add to
//     a per-thread cache-line-private shard — no locks, no branches on a
//     sink, safe from any thread. Hot call sites cache the Counter&
//     once (function-local static), so the registry's name lookup is
//     paid once per process, not per increment.
//  3. MERGED AT REPORT TIME. snapshot_metrics() sums the shards under
//     the registry lock and returns a sorted, stable sample list; the
//     shared JSON encoder below is what the fleet summary's "metrics"
//     block, --metrics-json dumps, and sweep_merge --stats-json all
//     emit, so every consumer reads one schema.
//
// Counters are process-cumulative: a driver that wants per-run numbers
// snapshots before and after (the sweep engine reports deltas this way
// is unnecessary — benches are one run per process; reset_metrics()
// exists for tests).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"

namespace falvolt::obs {

/// Monotonic counter, sharded per thread. Obtain through counter(name)
/// — instances live for the process lifetime, so cached references
/// never dangle.
class Counter {
 public:
  /// Relaxed add to this thread's shard. Safe from any thread, never
  /// blocks, never throws.
  void add(std::uint64_t n = 1) noexcept;

  /// Sum over all shards (relaxed loads; exact once writers quiesce,
  /// monotonically-lagging while they run).
  std::uint64_t value() const noexcept;

  /// Zero every shard (tests and per-run scoping only — racing writers
  /// may survive a concurrent reset).
  void reset() noexcept;

  static constexpr int kShards = 16;

 private:
  friend Counter& counter(const std::string& name);
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  // alignas(64) gives each shard its own cache line so concurrent
  // writers never false-share.
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins level (queue depth, worker count). set() is a
/// relaxed store; value() a relaxed load.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept;
  std::uint64_t value() const noexcept;

 private:
  friend Gauge& gauge(const std::string& name);
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;
  std::atomic<std::uint64_t> v_{0};
};

/// The registry: one Counter/Gauge per name, created on first use and
/// immortal thereafter. Lookup takes a mutex — cache the reference at
/// hot call sites:
///   static obs::Counter& hits = obs::counter("store.local.hit");
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);

/// RAII timer accumulating elapsed wall time into "<name>.ns" and an
/// invocation count into "<name>.count". Construct with pre-resolved
/// counters on hot paths.
class ScopedTimer {
 public:
  ScopedTimer(Counter& ns, Counter& count) : ns_(ns), count_(count) {}
  ~ScopedTimer() {
    ns_.add(static_cast<std::uint64_t>(timer_.seconds() * 1e9));
    count_.add(1);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter& ns_;
  Counter& count_;
  common::Timer timer_;
};

/// One merged sample: counters report their shard sum, gauges their
/// last set value.
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Every registered counter and gauge, merged and sorted by name
/// (stable across runs — map-ordered, so diffs line up).
std::vector<MetricSample> snapshot_metrics();

/// Zero every counter and gauge (tests / explicit per-run scoping).
void reset_metrics();

/// Encode samples as one JSON object, `indent` spaces deep:
///   {
///     "store.local.hit": 42,
///     ...
///   }
/// The single encoder behind the fleet summary's "metrics" block,
/// --metrics-json dumps, and sweep_merge --stats-json.
std::string encode_metrics_json(const std::vector<MetricSample>& samples,
                                int indent = 0);

/// Dump snapshot_metrics() to `path` as {"metrics": {...}} (throws on
/// I/O failure — an unwritable dump path is a usage error, not data
/// loss).
void write_metrics_json(const std::string& path);

}  // namespace falvolt::obs
