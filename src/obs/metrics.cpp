#include "obs/metrics.h"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/json.h"

namespace falvolt::obs {

namespace {

// Per-thread shard slot, assigned round-robin on first use. Threads are
// far longer-lived than increments, so a modulo collision between two
// threads costs an occasional shared cache line, never correctness.
int thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const int slot = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(Counter::kShards));
  return slot;
}

// The registry. node-stable containers (std::map + unique_ptr values)
// so a Counter& handed out once stays valid forever; entries are never
// erased.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal: outlives static dtors
  return *r;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  shards_[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::set(std::uint64_t v) noexcept {
  v_.store(v, std::memory_order_relaxed);
}

std::uint64_t Gauge::value() const noexcept {
  return v_.load(std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::unique_ptr<Counter>& slot = r.counters[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::unique_ptr<Gauge>& slot = r.gauges[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

std::vector<MetricSample> snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<MetricSample> out;
  out.reserve(r.counters.size() + r.gauges.size());
  // std::map iterates name-sorted; counters and gauges share one
  // namespace, so merge the two sorted streams.
  auto ci = r.counters.begin();
  auto gi = r.gauges.begin();
  while (ci != r.counters.end() || gi != r.gauges.end()) {
    const bool take_counter =
        gi == r.gauges.end() ||
        (ci != r.counters.end() && ci->first <= gi->first);
    if (take_counter) {
      out.push_back(MetricSample{ci->first, ci->second->value()});
      ++ci;
    } else {
      out.push_back(MetricSample{gi->first, gi->second->value()});
      ++gi;
    }
  }
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) {
    (void)name;
    c->reset();
  }
  for (auto& [name, g] : r.gauges) {
    (void)name;
    g->set(0);
  }
}

std::string encode_metrics_json(const std::vector<MetricSample>& samples,
                                int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad;
    out += "  \"";
    out += common::json_escape(samples[i].name);
    out += "\": ";
    out += std::to_string(samples[i].value);
  }
  if (!samples.empty()) {
    out += '\n';
    out += pad;
  }
  out += '}';
  return out;
}

void write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot open metrics JSON path " + path);
  }
  out << "{\n  \"metrics\": "
      << encode_metrics_json(snapshot_metrics(), /*indent=*/2) << "\n}\n";
}

}  // namespace falvolt::obs
