#pragma once
// Dense float32 ND tensor, row-major, value-semantic.
//
// This is the numeric substrate for the SNN library. It is deliberately
// small: shapes up to rank 4 (batch, channel, height, width), contiguous
// storage, no broadcasting machinery — the layers that need broadcast-like
// behaviour (batch norm, bias add) implement it explicitly in loops.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace falvolt::tensor {

/// Shape of a tensor: a short vector of non-negative dimensions.
using Shape = std::vector<int>;

/// Number of elements of a shape (product of dims; empty shape -> 1 scalar).
std::size_t numel(const Shape& shape);

/// Render "[2, 3, 4]".
std::string shape_str(const Shape& shape);

/// Dense float tensor with value semantics (copy copies the data).
class Tensor {
 public:
  /// Empty tensor (rank 0, one element? no: zero elements, null shape).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor initialized from a flat list (size must match the shape).
  Tensor(Shape shape, std::initializer_list<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  const Shape& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access (debug-friendly paths, tests).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 2D indexed access: tensor must be rank 2.
  float& at2(int r, int c);
  float at2(int r, int c) const;

  /// 4D indexed access: tensor must be rank 4 (N, C, H, W).
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;

  /// Reinterpret the data with a new shape of equal element count.
  Tensor reshaped(Shape new_shape) const;

  /// Fill in place.
  void fill(float v);
  void zero() { fill(0.0f); }

  /// Iterators over the flat data.
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace falvolt::tensor
