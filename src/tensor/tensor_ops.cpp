#include "tensor/tensor_ops.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_str(a.shape()) + " vs " +
                                shape_str(b.shape()));
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= s;
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i];
  return acc;
}

double mean(const Tensor& a) {
  return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

float max_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("max_value: empty tensor");
  float best = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) best = std::max(best, a[i]);
  return best;
}

std::size_t argmax(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("argmax: empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

std::vector<int> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("argmax_rows: need 2D");
  const int rows = a.dim(0);
  const int cols = a.dim(1);
  if (cols == 0) throw std::invalid_argument("argmax_rows: zero columns");
  std::vector<int> out(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* p = a.data() + static_cast<std::size_t>(r) * cols;
    int best = 0;
    for (int c = 1; c < cols; ++c) {
      if (p[c] > p[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

std::size_t count_nonzero(const Tensor& a, float tol) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i]) > tol) ++n;
  }
  return n;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return worst;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return std::sqrt(acc);
}

}  // namespace falvolt::tensor
