#include "tensor/gemm.h"

#include <cstring>
#include <stdexcept>

namespace falvolt::tensor {

// i-k-j loop order keeps the inner loop streaming over contiguous rows of B
// and C, which GCC auto-vectorizes; adequate for the network sizes used by
// the experiments (K up to a few hundred).

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // spike inputs are mostly zero
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate) {
  // C[M x N] = A^T[M x K] * B[K x N], A stored KxM.
  if (!accumulate) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  // C[M x N] = A[M x K] * B^T[K x N], B stored NxK.
  if (!accumulate) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  }
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

}  // namespace falvolt::tensor
