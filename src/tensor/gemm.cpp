#include "tensor/gemm.h"

#include <stdexcept>

#include "compute/gemm_kernels.h"

namespace falvolt::tensor {

// The tensor-level entry points are thin wrappers over the unified
// compute backend: the auto dispatchers pick the zero-skip naive kernel
// for small/sparse problems and the cache-blocked (optionally
// pool-parallel) kernels for large dense ones. Conv2d, Linear, and the
// trainer's backward pass all route through here.

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate) {
  compute::gemm_auto(a, b, c, m, k, n, accumulate);
}

void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate) {
  compute::gemm_at_b_auto(a, b, c, k, m, n, accumulate);
}

void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  compute::gemm_a_bt_auto(a, b, c, m, k, n, accumulate);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  }
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

}  // namespace falvolt::tensor
