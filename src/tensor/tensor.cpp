#include "tensor/tensor.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace falvolt::tensor {

std::size_t numel(const Shape& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(numel(shape_)) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::initializer_list<float> values)
    : shape_(std::move(shape)), data_(values) {
  if (data_.size() != numel(shape_)) {
    throw std::invalid_argument("Tensor: initializer size != shape numel");
  }
}

int Tensor::dim(int i) const {
  if (i < 0 || i >= rank()) throw std::out_of_range("Tensor::dim");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

float& Tensor::at2(int r, int c) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non-2D tensor");
  if (r < 0 || r >= shape_[0] || c < 0 || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at2");
  }
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

float Tensor::at2(int r, int c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at4(int n, int c, int h, int w) {
  if (rank() != 4) throw std::logic_error("Tensor::at4 on non-4D tensor");
  if (n < 0 || n >= shape_[0] || c < 0 || c >= shape_[1] || h < 0 ||
      h >= shape_[2] || w < 0 || w >= shape_[3]) {
    throw std::out_of_range("Tensor::at4");
  }
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
          shape_[3] +
      w;
  return data_[idx];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch " +
                                shape_str(shape_) + " -> " +
                                shape_str(new_shape));
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

}  // namespace falvolt::tensor
