#include "tensor/im2col.h"

#include <cstring>

namespace falvolt::tensor {

void im2col(const float* input, const ConvGeometry& g, float* out) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch_size();
  std::memset(out, 0,
              sizeof(float) * static_cast<std::size_t>(oh) * ow * patch);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      float* row = out + (static_cast<std::size_t>(oy) * ow + ox) * patch;
      int col = 0;
      for (int c = 0; c < g.in_channels; ++c) {
        const float* plane =
            input + static_cast<std::size_t>(c) * g.in_h * g.in_w;
        for (int ky = 0; ky < g.kernel_h; ++ky) {
          const int iy = oy * g.stride + ky - g.pad;
          for (int kx = 0; kx < g.kernel_w; ++kx, ++col) {
            const int ix = ox * g.stride + kx - g.pad;
            if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
              row[col] = plane[static_cast<std::size_t>(iy) * g.in_w + ix];
            }
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* grad_input) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int patch = g.patch_size();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const float* row =
          cols + (static_cast<std::size_t>(oy) * ow + ox) * patch;
      int col = 0;
      for (int c = 0; c < g.in_channels; ++c) {
        float* plane =
            grad_input + static_cast<std::size_t>(c) * g.in_h * g.in_w;
        for (int ky = 0; ky < g.kernel_h; ++ky) {
          const int iy = oy * g.stride + ky - g.pad;
          for (int kx = 0; kx < g.kernel_w; ++kx, ++col) {
            const int ix = ox * g.stride + kx - g.pad;
            if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
              plane[static_cast<std::size_t>(iy) * g.in_w + ix] += row[col];
            }
          }
        }
      }
    }
  }
}

}  // namespace falvolt::tensor
