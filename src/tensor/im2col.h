#pragma once
// im2col / col2im lowering for 2D convolution.
//
// A convolution with Cin input channels, KhxKw kernel, stride S and padding
// P over an HxW input becomes a GEMM whose A matrix has one row per output
// pixel and K = Cin*Kh*Kw columns. This is also exactly how the layer's
// weights are laid onto the systolic array: the GEMM's B matrix is
// [K x Cout], and element (k, m) of B maps to PE(k mod N, m mod N).

#include "tensor/tensor.h"

namespace falvolt::tensor {

/// Static geometry of a conv lowered to GEMM.
struct ConvGeometry {
  int in_channels = 0;
  int in_h = 0;
  int in_w = 0;
  int kernel_h = 0;
  int kernel_w = 0;
  int stride = 1;
  int pad = 0;

  int out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  /// GEMM K dimension.
  int patch_size() const { return in_channels * kernel_h * kernel_w; }
  /// GEMM M dimension per sample.
  int out_pixels() const { return out_h() * out_w(); }
};

/// Expand one sample (C,H,W, rank-3 view of a contiguous buffer) to the
/// im2col matrix [out_pixels x patch_size]. `out` must hold that many
/// floats. Out-of-image taps read as 0 (zero padding).
void im2col(const float* input, const ConvGeometry& g, float* out);

/// Reverse scatter: accumulate an im2col-shaped gradient back into an input
/// gradient buffer (C,H,W). `grad_input` must be pre-zeroed by the caller
/// when starting a fresh accumulation.
void col2im(const float* cols, const ConvGeometry& g, float* grad_input);

}  // namespace falvolt::tensor
