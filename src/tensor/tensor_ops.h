#pragma once
// Elementwise and reduction operations on Tensor.

#include "tensor/tensor.h"

namespace falvolt::tensor {

/// a + b elementwise (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// a - b elementwise.
Tensor sub(const Tensor& a, const Tensor& b);
/// a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// a * s.
Tensor scale(const Tensor& a, float s);

/// In-place a += b.
void add_inplace(Tensor& a, const Tensor& b);
/// In-place a += s * b (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);
/// In-place a *= b elementwise (used to apply prune masks).
void mul_inplace(Tensor& a, const Tensor& b);
/// In-place a *= s.
void scale_inplace(Tensor& a, float s);

/// Sum of all elements.
double sum(const Tensor& a);
/// Mean of all elements (0 for empty).
double mean(const Tensor& a);
/// Max element (throws on empty).
float max_value(const Tensor& a);
/// Index of the max element (throws on empty).
std::size_t argmax(const Tensor& a);
/// Argmax over the last dimension for each row of a 2D tensor.
std::vector<int> argmax_rows(const Tensor& a);

/// Count of nonzero elements.
std::size_t count_nonzero(const Tensor& a, float tol = 0.0f);

/// Max |a - b| (shapes must match).
double max_abs_diff(const Tensor& a, const Tensor& b);

/// L2 norm of all elements.
double l2_norm(const Tensor& a);

}  // namespace falvolt::tensor
