#pragma once
// Float GEMM kernels. Conv and FC layers lower to
//   C[M x N] = A[M x K] * B[K x N]  (+ accumulate variants)
// via im2col, so one well-ordered kernel serves the whole library.

#include <cstddef>

#include "tensor/tensor.h"

namespace falvolt::tensor {

/// C = A * B. A is MxK, B is KxN, C is MxN; all row-major raw pointers.
/// `accumulate` adds into C instead of overwriting it.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate = false);

/// C = A^T * B where A is KxM (so A^T is MxK). Used for weight gradients.
void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate = false);

/// C = A * B^T where B is NxK (so B^T is KxN). Used for input gradients.
void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate = false);

/// Tensor convenience wrapper: returns A(MxK) * B(KxN).
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace falvolt::tensor
