#pragma once
// Float GEMM entry points. Conv and FC layers lower to
//   C[M x N] = A[M x K] * B[K x N]  (+ accumulate variants)
// via im2col, so one interface serves the whole library. The
// implementations delegate to the unified compute backend
// (compute/gemm_kernels.h), which dispatches between the zero-skip naive
// kernel and the cache-blocked, thread-pool-parallel kernels by problem
// shape and input sparsity.

#include <cstddef>

#include "tensor/tensor.h"

namespace falvolt::tensor {

/// C = A * B. A is MxK, B is KxN, C is MxN; all row-major raw pointers.
/// `accumulate` adds into C instead of overwriting it.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate = false);

/// C = A^T * B where A is KxM (so A^T is MxK). Used for weight gradients.
void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate = false);

/// C = A * B^T where B is NxK (so B^T is KxN). Used for input gradients.
void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate = false);

/// Tensor convenience wrapper: returns A(MxK) * B(KxN).
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace falvolt::tensor
