#include "compute/engine_registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "compute/gemm_kernels.h"
#include "compute/thread_pool.h"
#include "systolic/faulty_gemm.h"

namespace falvolt::compute {

void NaiveGemmEngine::run(const float* a, const float* w, float* c, int m,
                          int k, int n, const std::string&) {
  gemm_naive(a, w, c, m, k, n);
}

void BlockedGemmEngine::run(const float* a, const float* w, float* c, int m,
                            int k, int n, const std::string&) {
  gemm_blocked(a, w, c, m, k, n, /*accumulate=*/false, threads_);
}

EngineRegistry::EngineRegistry() {
  register_factory("naive", [](const EngineOptions&) {
    return std::make_unique<NaiveGemmEngine>();
  });
  register_factory("blocked", [](const EngineOptions&) {
    return std::make_unique<BlockedGemmEngine>(1);
  });
  register_factory("parallel", [](const EngineOptions& opts) {
    const int threads = opts.threads > 0 ? opts.threads : global_threads();
    return std::make_unique<BlockedGemmEngine>(threads);
  });
  register_factory("systolic", [](const EngineOptions& opts) {
    systolic::ArrayConfig cfg;
    if (opts.array_rows > 0) cfg.rows = opts.array_rows;
    if (opts.array_cols > 0) cfg.cols = opts.array_cols;
    const auto handling =
        opts.bypass_faulty
            ? systolic::SystolicGemmEngine::FaultHandling::kBypass
            : systolic::SystolicGemmEngine::FaultHandling::kCorrupt;
    auto engine = std::make_unique<systolic::SystolicGemmEngine>(
        cfg, opts.fault_map, handling);
    if (opts.threads > 0) engine->set_threads(opts.threads);
    return engine;
  });
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::register_factory(const std::string& name,
                                      Factory factory) {
  for (auto& [existing, f] : factories_) {
    if (existing == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<snn::GemmEngine> EngineRegistry::create(
    const std::string& name, const EngineOptions& opts) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory(opts);
  }
  std::ostringstream os;
  os << "EngineRegistry: unknown engine \"" << name << "\" (known:";
  for (const std::string& n : names()) os << " " << n;
  os << ")";
  throw std::invalid_argument(os.str());
}

bool EngineRegistry::contains(const std::string& name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& e) { return e.first == name; });
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace falvolt::compute
