#pragma once
// Named GEMM-engine dispatch for benches, examples, and tests.
//
// The registry maps engine names to factories producing snn::GemmEngine
// instances:
//
//   "naive"    — reference float kernel (zero-skip i-k-j loops)
//   "blocked"  — cache-blocked float kernel, single thread
//   "parallel" — cache-blocked float kernel split across the thread pool
//   "systolic" — bit-accurate faulty systolic array model (optionally
//                configured with array geometry, a fault map, and the
//                bypass mux via EngineOptions)
//
// New backends (GPU offload, batched variants, ...) register themselves
// here and every harness that selects engines by name picks them up.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "snn/layer.h"

namespace falvolt::fault {
class FaultMap;
}  // namespace falvolt::fault

namespace falvolt::compute {

/// Construction-time knobs a factory may honor. Engines that do not use a
/// field ignore it (the float engines ignore the array/fault fields).
struct EngineOptions {
  /// Worker threads for parallel engines; 0 means the global pool size.
  int threads = 0;
  /// Systolic array geometry; 0 keeps systolic::ArrayConfig defaults.
  int array_rows = 0;
  int array_cols = 0;
  /// Fault map for the systolic engine (non-owning; nullptr = golden chip).
  const fault::FaultMap* fault_map = nullptr;
  /// Engage the bypass mux on faulty PEs (FaP/FalVolt hardware side).
  bool bypass_faulty = false;
};

class EngineRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<snn::GemmEngine>(const EngineOptions&)>;

  /// Process-wide registry, pre-seeded with the four built-in engines.
  static EngineRegistry& instance();

  /// Register (or replace) a factory under `name`.
  void register_factory(const std::string& name, Factory factory);

  /// Instantiate the engine registered under `name`; throws
  /// std::invalid_argument (listing the known names) on a miss.
  std::unique_ptr<snn::GemmEngine> create(
      const std::string& name, const EngineOptions& opts = {}) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  EngineRegistry();
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Float engines backed by the compute kernels, exposed for direct use.
class NaiveGemmEngine final : public snn::GemmEngine {
 public:
  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& layer_tag) override;
};

class BlockedGemmEngine final : public snn::GemmEngine {
 public:
  /// threads <= 1 runs serial; anything larger splits output rows across
  /// the global pool. Results are bit-identical either way.
  explicit BlockedGemmEngine(int threads = 1) : threads_(threads) {}
  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& layer_tag) override;
  int threads() const { return threads_; }

 private:
  int threads_;
};

}  // namespace falvolt::compute
