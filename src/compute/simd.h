#pragma once
// Minimal SIMD helpers for the integer hot paths.
//
// The faulty-GEMM engine's proven-saturation-free fast path accumulates
// plain int32 weights across groups of adjacent output columns; with AVX2
// one 256-bit register holds the 8 column accumulators, so each spiking
// input row position is a single load+add. The scalar fallback keeps the
// exact same 8-lane shape (and therefore the same add order per lane), so
// results are bit-identical whether or not AVX2 is compiled in.

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace falvolt::compute {

/// Column-group width of the integer fast path (one AVX2 register of
/// int32 lanes). The scalar fallback uses the same width so the two
/// builds partition columns identically.
inline constexpr int kI32Lanes = 8;

/// Name of the compiled integer SIMD backend (perf-trajectory metadata).
inline const char* simd_backend() {
#if defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

/// out[0..7] = sum over t of base[idx[t] * stride + lane], with plain
/// (non-saturating) int32 adds in idx order. Callers must have proven the
/// sums cannot overflow (see SystolicGemmEngine's headroom proof).
inline void accumulate_rows_i32x8(const std::int32_t* base, int stride,
                                  const int* idx, int count,
                                  std::int32_t* out) {
#if defined(__AVX2__)
  __m256i acc = _mm256_setzero_si256();
  for (int t = 0; t < count; ++t) {
    const std::int32_t* row =
        base + static_cast<std::ptrdiff_t>(idx[t]) * stride;
    acc = _mm256_add_epi32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row)));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), acc);
#else
  std::int32_t acc[kI32Lanes] = {0};
  for (int t = 0; t < count; ++t) {
    const std::int32_t* row =
        base + static_cast<std::ptrdiff_t>(idx[t]) * stride;
    for (int lane = 0; lane < kI32Lanes; ++lane) acc[lane] += row[lane];
  }
  for (int lane = 0; lane < kI32Lanes; ++lane) out[lane] = acc[lane];
#endif
}

}  // namespace falvolt::compute
