#pragma once
// Shared worker-thread pool for the compute backend.
//
// All parallelism in the library flows through ThreadPool::parallel_for,
// which splits an index range into chunks and runs them on the pool's
// workers plus the calling thread. Work items must write disjoint output
// (the GEMM kernels partition output rows), so the result is bit-identical
// to a serial run regardless of thread count or chunk scheduling.
//
// A process-wide pool is sized from FALVOLT_THREADS (else the hardware
// concurrency) and can be resized with set_global_threads — the hook used
// by the --threads flag on every bench and example.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace falvolt::compute {

class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// clamped to [1, kMaxThreads]. A pool of size 1 spawns no threads and
  /// runs every parallel_for inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in parallel_for (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of at least `grain` indices. Blocks until the whole range is done.
  /// Chunks are claimed dynamically, so bodies must be independent and
  /// write disjoint state. Nested calls from inside a body run inline.
  /// At most ONE external caller may be inside parallel_for on a given
  /// pool at a time (the library drives the global pool from the single
  /// experiment thread); concurrent callers would corrupt each other's
  /// dispatch state.
  void parallel_for(int begin, int end, int grain,
                    const std::function<void(int, int)>& body);

  static constexpr int kMaxThreads = 256;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers to finish
  std::uint64_t generation_ = 0;
  int workers_active_ = 0;
  bool stop_ = false;

  // Current parallel_for (valid while generation_ is live).
  const std::function<void(int, int)>* body_ = nullptr;
  std::atomic<int> next_{0};
  int end_ = 0;
  int chunk_ = 1;
};

/// Threads the process-wide pool was requested to use: FALVOLT_THREADS
/// when set to a positive integer, else std::thread::hardware_concurrency.
int default_threads();

/// The process-wide pool, built on first use with default_threads().
ThreadPool& global_pool();

/// Resize the process-wide pool (0 restores default_threads()). Not safe
/// while another thread is inside global_pool().parallel_for.
void set_global_threads(int threads);

/// Current size of the process-wide pool.
int global_threads();

}  // namespace falvolt::compute
