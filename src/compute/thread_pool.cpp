#include "compute/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/env.h"
#include "obs/metrics.h"

namespace falvolt::compute {

namespace {

// True while the current thread is executing a parallel_for body; nested
// parallelism degrades to inline execution instead of deadlocking.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int total = std::clamp(threads, 1, kMaxThreads);
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int i = 0; i < total - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      if (body == nullptr) {
        // Woke for a generation whose caller already finished (it drained
        // every chunk itself). Claiming chunks now could race with the
        // NEXT parallel_for's setup, so just go back to sleep.
        continue;
      }
      ++workers_active_;
    }
    t_in_parallel_region = true;
    static obs::Counter& chunks = obs::counter("pool.chunks");
    int claimed = 0;
    for (;;) {
      const int lo = next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (lo >= end_) break;
      ++claimed;
      (*body)(lo, std::min(lo + chunk_, end_));
    }
    t_in_parallel_region = false;
    if (claimed > 0) chunks.add(static_cast<std::uint64_t>(claimed));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(int begin, int end, int grain,
                              const std::function<void(int, int)>& body) {
  // Queue/task telemetry (obs/metrics.h): every call is counted, inline
  // executions separately (nested regions, tiny spans, 1-thread pools),
  // and dispatched regions get wall time + claimed-chunk counts. The
  // counters are sharded relaxed adds — the GEMM hot path sees only a
  // handful per parallel_for, never per-element work.
  static obs::Counter& calls = obs::counter("pool.parallel_for.calls");
  static obs::Counter& inline_calls = obs::counter("pool.parallel_for.inline");
  static obs::Counter& dispatch_ns = obs::counter("pool.parallel_for.ns");
  static obs::Counter& dispatch_count = obs::counter("pool.parallel_for.count");
  static obs::Counter& chunks = obs::counter("pool.chunks");
  if (end <= begin) return;
  calls.add(1);
  const int span = end - begin;
  const int threads = size();
  if (threads == 1 || t_in_parallel_region || span <= std::max(grain, 1)) {
    inline_calls.add(1);
    body(begin, end);
    return;
  }
  obs::ScopedTimer timed(dispatch_ns, dispatch_count);
  // Aim for a few chunks per thread so dynamic claiming balances load
  // without shrinking chunks below the grain.
  const int chunk =
      std::max(std::max(grain, 1), (span + threads * 4 - 1) / (threads * 4));
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    next_.store(begin, std::memory_order_relaxed);
    end_ = end;
    chunk_ = chunk;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a full participant.
  t_in_parallel_region = true;
  int claimed = 0;
  for (;;) {
    const int lo = next_.fetch_add(chunk, std::memory_order_relaxed);
    if (lo >= end) break;
    ++claimed;
    body(lo, std::min(lo + chunk, end));
  }
  t_in_parallel_region = false;
  if (claimed > 0) chunks.add(static_cast<std::uint64_t>(claimed));
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  body_ = nullptr;
}

int default_threads() {
  const long long env = common::env_int_or("FALVOLT_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(
        std::min<long long>(env, ThreadPool::kMaxThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int want = std::clamp(threads > 0 ? threads : default_threads(), 1,
                              ThreadPool::kMaxThreads);
  if (g_pool && g_pool->size() == want) return;  // avoid pointless respawn
  g_pool = std::make_unique<ThreadPool>(want);
}

int global_threads() { return global_pool().size(); }

}  // namespace falvolt::compute
