#pragma once
// Float GEMM kernels for the unified compute backend.
//
// Three tiers:
//
//   *_naive    — the reference loops (i-k-j with a zero-skip fast path for
//                spike inputs; the seed library's kernels).
//   *_blocked  — cache-blocked: B packed into column panels, register
//                tiling over an MR x NR micro-tile, K sliced into panels
//                that fit L1/L2.
//   gemm_auto* — dispatch: picks naive for small/narrow problems, blocked
//                for large ones, and splits output rows across the global
//                thread pool when the problem is big enough to pay for it.
//
// Determinism: within a tier, kernels partition only output rows and keep
// each row's accumulation schedule fixed, so results are bit-identical for
// any thread count. ACROSS tiers results agree only to float tolerance —
// the blocked tier sums K panels as separate partials (and the compiler
// may contract its multiply-adds to FMA), so it is not bitwise equal to
// naive for every shape.
//
// tensor::gemm / gemm_at_b / gemm_a_bt are thin wrappers over the auto
// dispatchers; call the explicit tiers directly only in benches and tests.

#include <cstddef>

namespace falvolt::compute {

// ---------------------------------------------------------------- naive

/// C[m x n] = A[m x k] * B[k x n] (row-major). `accumulate` adds into C.
void gemm_naive(const float* a, const float* b, float* c, int m, int k,
                int n, bool accumulate = false);

/// C[m x n] = A^T * B with A stored [k x m].
void gemm_at_b_naive(const float* a, const float* b, float* c, int k, int m,
                     int n, bool accumulate = false);

/// C[m x n] = A * B^T with B stored [n x k].
void gemm_a_bt_naive(const float* a, const float* b, float* c, int m, int k,
                     int n, bool accumulate = false);

// --------------------------------------------------------------- blocked

/// Cache-blocked C = A * B. `threads` caps how many global-pool workers
/// share the output rows (<= 1 runs serial); results are bit-identical
/// for any count.
void gemm_blocked(const float* a, const float* b, float* c, int m, int k,
                  int n, bool accumulate = false, int threads = 1);

/// Cache-blocked C = A^T * B (A stored [k x m]); transposes A into a
/// scratch buffer, then runs the blocked kernel.
void gemm_at_b_blocked(const float* a, const float* b, float* c, int k,
                       int m, int n, bool accumulate = false,
                       int threads = 1);

/// Cache-blocked C = A * B^T (B stored [n x k]): dot-product tiling, both
/// operands streamed along contiguous k.
void gemm_a_bt_blocked(const float* a, const float* b, float* c, int m,
                       int k, int n, bool accumulate = false,
                       int threads = 1);

// --------------------------------------------------------------- dispatch

/// Heuristic dispatchers used by tensor::gemm and friends: naive vs
/// blocked by problem shape, parallel across the global pool when large.
void gemm_auto(const float* a, const float* b, float* c, int m, int k,
               int n, bool accumulate = false);
void gemm_at_b_auto(const float* a, const float* b, float* c, int k, int m,
                    int n, bool accumulate = false);
void gemm_a_bt_auto(const float* a, const float* b, float* c, int m, int k,
                    int n, bool accumulate = false);

}  // namespace falvolt::compute
