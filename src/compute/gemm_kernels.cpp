#include "compute/gemm_kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "compute/thread_pool.h"

namespace falvolt::compute {

namespace {

// Micro-tile geometry: MR output rows x NR output columns held in
// registers across a whole K panel. NR matches one-or-two vector widths;
// MR x NR must stay within the 16-register budget of AVX2 (8x8 floats =
// 8 accumulator vectors + a B row + an A broadcast).
constexpr int kMr = 8;
constexpr int kNr = 8;
// K panel: one packed B panel is kKc x kNr floats (8 KB), resident in L1
// while the micro-kernel streams over it.
constexpr int kKc = 256;

// Row-parallel work is split at this many output rows per chunk.
constexpr int kRowGrain = 16;
// Problems below this many multiply-adds never leave the calling thread.
constexpr long long kParallelFlops = 1LL << 18;

inline void zero_output(float* c, int m, int n, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  }
}

// ---------------------------------------------------------------- naive

// i-k-j with a zero-skip fast path: spike activations are mostly zero, so
// skipping av == 0 drops the bulk of the inner-loop work. Skipped terms
// contribute exactly +0, so the result matches the dense accumulation.
void gemm_naive_rows(const float* a, const float* b, float* c, int i0,
                     int i1, int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_rows(const float* a, const float* b, float* c, int i0, int i1,
                    int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

// --------------------------------------------------------------- blocked

#if defined(__GNUC__) || defined(__clang__)
#define FALVOLT_VECTOR_KERNEL 1
#if defined(__GNUC__) && !defined(__clang__)
// Without AVX the 32-byte vector is legalized to two 16-byte halves; the
// ABI note about passing such vectors is irrelevant here (all helpers
// inline within this TU).
#pragma GCC diagnostic ignored "-Wpsabi"
#endif
// Eight-lane float vector (GCC/Clang extension; legalized to whatever the
// target ISA provides). One vector spans a full kNr micro-tile row.
typedef float Vf8 __attribute__((vector_size(32)));
static_assert(kNr == 8, "micro-kernel assumes one 8-lane vector per row");

inline Vf8 load8(const float* p) {
  Vf8 v;
  __builtin_memcpy(&v, p, sizeof(Vf8));
  return v;
}
inline void store8(float* p, const Vf8& v) {
  __builtin_memcpy(p, &v, sizeof(Vf8));
}

// Full 8x8 micro-tile: eight named accumulator vectors (one per output
// row) live in registers for the whole K panel; per k step the kernel
// issues one B-row load, eight A broadcasts, and eight vector FMAs.
// Lane j of row r accumulates sum_k a[r][k] * b[k][j] with k ascending —
// the same per-element order as the scalar kernels.
void micro_kernel_full(const float* a, int lda, const float* bp, float* c,
                       int ldc, int kc) {
  Vf8 acc0{}, acc1{}, acc2{}, acc3{}, acc4{}, acc5{}, acc6{}, acc7{};
  const float* r0 = a;
  const float* r1 = a + lda;
  const float* r2 = a + 2 * static_cast<std::size_t>(lda);
  const float* r3 = a + 3 * static_cast<std::size_t>(lda);
  const float* r4 = a + 4 * static_cast<std::size_t>(lda);
  const float* r5 = a + 5 * static_cast<std::size_t>(lda);
  const float* r6 = a + 6 * static_cast<std::size_t>(lda);
  const float* r7 = a + 7 * static_cast<std::size_t>(lda);
  for (int kk = 0; kk < kc; ++kk) {
    const Vf8 bv = load8(bp + static_cast<std::size_t>(kk) * kNr);
    acc0 += r0[kk] * bv;
    acc1 += r1[kk] * bv;
    acc2 += r2[kk] * bv;
    acc3 += r3[kk] * bv;
    acc4 += r4[kk] * bv;
    acc5 += r5[kk] * bv;
    acc6 += r6[kk] * bv;
    acc7 += r7[kk] * bv;
  }
  const Vf8* acc[kMr] = {&acc0, &acc1, &acc2, &acc3,
                         &acc4, &acc5, &acc6, &acc7};
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    store8(crow, load8(crow) + *acc[r]);
  }
}
#else
// Portable fallback: constant trip counts let the compiler unroll and
// register-allocate the accumulator tile.
void micro_kernel_full(const float* a, int lda, const float* bp, float* c,
                       int ldc, int kc) {
  float acc[kMr][kNr] = {{0.0f}};
  for (int kk = 0; kk < kc; ++kk) {
    const float* brow = bp + static_cast<std::size_t>(kk) * kNr;
    for (int r = 0; r < kMr; ++r) {
      const float av = a[static_cast<std::size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kMr; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < kNr; ++j) crow[j] += acc[r][j];
  }
}
#endif  // FALVOLT_VECTOR_KERNEL

// Edge tile (mr < kMr rows and/or nr < kNr live columns). The packed B
// panel is zero-padded to kNr, so the arithmetic is identical to the full
// tile; only the write-back narrows. Per-row results therefore do not
// depend on how rows were grouped into tiles.
void micro_kernel_edge(const float* a, int lda, const float* bp, float* c,
                       int ldc, int kc, int mr, int nr) {
  float acc[kMr][kNr] = {{0.0f}};
  for (int kk = 0; kk < kc; ++kk) {
    const float* brow = bp + static_cast<std::size_t>(kk) * kNr;
    for (int r = 0; r < mr; ++r) {
      const float av = a[static_cast<std::size_t>(r) * lda + kk];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < mr; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

// One K slab: pack B[k0 .. k0+kc) into zero-padded column panels, then
// sweep the row blocks in [block_lo, block_hi).
void blocked_row_blocks(const float* a, const float* bp, float* c, int m,
                        int k, int n, int k0, int kc, int block_lo,
                        int block_hi) {
  const int num_panels = (n + kNr - 1) / kNr;
  for (int blk = block_lo; blk < block_hi; ++blk) {
    const int i0 = blk * kMr;
    const int mr = std::min(kMr, m - i0);
    const float* ablk = a + static_cast<std::size_t>(i0) * k + k0;
    for (int jp = 0; jp < num_panels; ++jp) {
      const int j0 = jp * kNr;
      const int nr = std::min(kNr, n - j0);
      const float* panel =
          bp + static_cast<std::size_t>(jp) * kc * kNr;
      float* cblk = c + static_cast<std::size_t>(i0) * n + j0;
      if (mr == kMr && nr == kNr) {
        micro_kernel_full(ablk, k, panel, cblk, n, kc);
      } else {
        micro_kernel_edge(ablk, k, panel, cblk, n, kc, mr, nr);
      }
    }
  }
}

void pack_b_panels(const float* b, float* bp, int k0, int kc, int n) {
  const int num_panels = (n + kNr - 1) / kNr;
  for (int jp = 0; jp < num_panels; ++jp) {
    const int j0 = jp * kNr;
    const int nr = std::min(kNr, n - j0);
    float* panel = bp + static_cast<std::size_t>(jp) * kc * kNr;
    for (int kk = 0; kk < kc; ++kk) {
      const float* src = b + static_cast<std::size_t>(k0 + kk) * n + j0;
      float* dst = panel + static_cast<std::size_t>(kk) * kNr;
      for (int j = 0; j < nr; ++j) dst[j] = src[j];
      for (int j = nr; j < kNr; ++j) dst[j] = 0.0f;
    }
  }
}

// Blocked transpose of src[rows x cols] into dst[cols x rows].
void transpose(const float* src, float* dst, int rows, int cols) {
  constexpr int kTile = 32;
  for (int r0 = 0; r0 < rows; r0 += kTile) {
    const int r1 = std::min(r0 + kTile, rows);
    for (int c0 = 0; c0 < cols; c0 += kTile) {
      const int c1 = std::min(c0 + kTile, cols);
      for (int r = r0; r < r1; ++r) {
        for (int c = c0; c < c1; ++c) {
          dst[static_cast<std::size_t>(c) * rows + r] =
              src[static_cast<std::size_t>(r) * cols + c];
        }
      }
    }
  }
}

// Fraction of nonzero entries in (a sample of) A — decides whether the
// zero-skip naive kernel beats the dense blocked one on spike inputs.
double sampled_density(const float* a, int m, int k) {
  const int rows = std::min(m, 32);
  if (rows == 0 || k == 0) return 1.0;
  std::size_t nz = 0;
  for (int i = 0; i < rows; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) nz += arow[kk] != 0.0f;
  }
  return static_cast<double>(nz) / (static_cast<double>(rows) * k);
}

inline bool parallel_worthwhile(int m, long long flops) {
  return flops >= kParallelFlops && m >= 2 * kRowGrain;
}

}  // namespace

void gemm_naive(const float* a, const float* b, float* c, int m, int k,
                int n, bool accumulate) {
  zero_output(c, m, n, accumulate);
  gemm_naive_rows(a, b, c, 0, m, k, n);
}

void gemm_at_b_naive(const float* a, const float* b, float* c, int k, int m,
                     int n, bool accumulate) {
  // C[m x n] = A^T * B with A stored [k x m]; k-outer keeps both operand
  // rows streaming.
  zero_output(c, m, n, accumulate);
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_naive(const float* a, const float* b, float* c, int m, int k,
                     int n, bool accumulate) {
  zero_output(c, m, n, accumulate);
  gemm_a_bt_rows(a, b, c, 0, m, k, n);
}

void gemm_blocked(const float* a, const float* b, float* c, int m, int k,
                  int n, bool accumulate, int threads) {
  zero_output(c, m, n, accumulate);
  if (m == 0 || k == 0 || n == 0) return;
  const int num_panels = (n + kNr - 1) / kNr;
  const int row_blocks = (m + kMr - 1) / kMr;
  std::vector<float> bp(static_cast<std::size_t>(num_panels) * kKc * kNr);
  const bool parallel = threads > 1 && row_blocks > 1;
  // Chunks at least row_blocks/threads wide cap the effective concurrency
  // at the requested width even when the global pool is larger.
  const int grain = parallel ? (row_blocks + threads - 1) / threads : 1;
  for (int k0 = 0; k0 < k; k0 += kKc) {
    const int kc = std::min(kKc, k - k0);
    pack_b_panels(b, bp.data(), k0, kc, n);
    if (parallel) {
      global_pool().parallel_for(
          0, row_blocks, grain, [&](int lo, int hi) {
            blocked_row_blocks(a, bp.data(), c, m, k, n, k0, kc, lo, hi);
          });
    } else {
      blocked_row_blocks(a, bp.data(), c, m, k, n, k0, kc, 0, row_blocks);
    }
  }
}

void gemm_at_b_blocked(const float* a, const float* b, float* c, int k,
                       int m, int n, bool accumulate, int threads) {
  std::vector<float> at(static_cast<std::size_t>(m) * k);
  transpose(a, at.data(), k, m);
  gemm_blocked(at.data(), b, c, m, k, n, accumulate, threads);
}

void gemm_a_bt_blocked(const float* a, const float* b, float* c, int m,
                       int k, int n, bool accumulate, int threads) {
  zero_output(c, m, n, accumulate);
  if (m == 0 || k == 0 || n == 0) return;
  // Four independent partial sums break the dependence chain of the dot
  // product; the combine order is fixed, so results are identical across
  // tilings and thread counts.
  constexpr int kJb = 128;  // B rows revisited per i sweep (L2-resident)
  const auto rows = [&](int i0, int i1) {
    for (int j0 = 0; j0 < n; j0 += kJb) {
      const int j1 = std::min(j0 + kJb, n);
      for (int i = i0; i < i1; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = j0; j < j1; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * k;
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          int kk = 0;
          for (; kk + 4 <= k; kk += 4) {
            s0 += arow[kk] * brow[kk];
            s1 += arow[kk + 1] * brow[kk + 1];
            s2 += arow[kk + 2] * brow[kk + 2];
            s3 += arow[kk + 3] * brow[kk + 3];
          }
          for (; kk < k; ++kk) s0 += arow[kk] * brow[kk];
          crow[j] += (s0 + s1) + (s2 + s3);
        }
      }
    }
  };
  if (threads > 1 && m >= 2 * kRowGrain) {
    const int grain = std::max(kRowGrain, (m + threads - 1) / threads);
    global_pool().parallel_for(0, m, grain, rows);
  } else {
    rows(0, m);
  }
}

void gemm_auto(const float* a, const float* b, float* c, int m, int k,
               int n, bool accumulate) {
  const long long flops =
      static_cast<long long>(m) * k * n;
  const bool parallel =
      parallel_worthwhile(m, flops) && global_threads() > 1;
  // Narrow or tiny problems — and sparse spike inputs, where the
  // zero-skip path drops most of the work — stay on the naive kernel.
  const bool use_blocked = n >= kNr && k >= kNr && m >= kMr &&
                           flops >= 1LL << 14 &&
                           sampled_density(a, m, k) >= 0.2;
  if (use_blocked) {
    gemm_blocked(a, b, c, m, k, n, accumulate, parallel ? global_threads() : 1);
    return;
  }
  zero_output(c, m, n, accumulate);
  if (parallel) {
    global_pool().parallel_for(0, m, kRowGrain, [&](int i0, int i1) {
      gemm_naive_rows(a, b, c, i0, i1, k, n);
    });
  } else {
    gemm_naive_rows(a, b, c, 0, m, k, n);
  }
}

void gemm_at_b_auto(const float* a, const float* b, float* c, int k, int m,
                    int n, bool accumulate) {
  const long long flops = static_cast<long long>(m) * k * n;
  // The naive k-outer kernel zero-skips sparse activations and cannot be
  // row-partitioned; switch to transpose+blocked only when the extra
  // arithmetic is clearly bought back by tiling and threads.
  const bool use_blocked = n >= kNr && m >= 2 * kMr && k >= kNr &&
                           flops >= 1LL << 20 &&
                           sampled_density(a, k, m) >= 0.2;
  if (use_blocked) {
    const bool parallel =
        parallel_worthwhile(m, flops) && global_threads() > 1;
    gemm_at_b_blocked(a, b, c, k, m, n, accumulate,
                      parallel ? global_threads() : 1);
    return;
  }
  gemm_at_b_naive(a, b, c, k, m, n, accumulate);
}

void gemm_a_bt_auto(const float* a, const float* b, float* c, int m, int k,
                    int n, bool accumulate) {
  const long long flops = static_cast<long long>(m) * k * n;
  if (k >= 8 && flops >= 1LL << 14) {
    const bool parallel =
        parallel_worthwhile(m, flops) && global_threads() > 1;
    gemm_a_bt_blocked(a, b, c, m, k, n, accumulate,
                      parallel ? global_threads() : 1);
    return;
  }
  gemm_a_bt_naive(a, b, c, m, k, n, accumulate);
}

}  // namespace falvolt::compute
