#pragma once
// Umbrella header: the full public API of the FalVolt library.
//
//   #include "falvolt/falvolt.h"
//
// pulls in every module. Fine-grained headers remain available for
// builds that want tighter include graphs.

// Utilities.
#include "common/cli.h"       // IWYU pragma: export
#include "common/csv.h"       // IWYU pragma: export
#include "common/env.h"       // IWYU pragma: export
#include "common/rng.h"       // IWYU pragma: export
#include "common/stats.h"     // IWYU pragma: export
#include "common/table.h"     // IWYU pragma: export
#include "common/timer.h"     // IWYU pragma: export

// Parallel compute backend (thread pool, blocked GEMM, engine dispatch).
#include "compute/engine_registry.h"  // IWYU pragma: export
#include "compute/gemm_kernels.h"     // IWYU pragma: export
#include "compute/thread_pool.h"      // IWYU pragma: export

// Fixed-point arithmetic and stuck-at faults.
#include "fixed/fixed_format.h"  // IWYU pragma: export
#include "fixed/fixed_ops.h"     // IWYU pragma: export
#include "fixed/stuck_bits.h"    // IWYU pragma: export

// Tensors.
#include "tensor/gemm.h"        // IWYU pragma: export
#include "tensor/im2col.h"      // IWYU pragma: export
#include "tensor/tensor.h"      // IWYU pragma: export
#include "tensor/tensor_ops.h"  // IWYU pragma: export

// Datasets.
#include "data/dataset.h"                // IWYU pragma: export
#include "data/encoders.h"               // IWYU pragma: export
#include "data/glyphs.h"                 // IWYU pragma: export
#include "data/synthetic_dvs_gesture.h"  // IWYU pragma: export
#include "data/synthetic_mnist.h"        // IWYU pragma: export
#include "data/synthetic_nmnist.h"       // IWYU pragma: export

// Spiking neural networks.
#include "snn/batchnorm.h"  // IWYU pragma: export
#include "snn/conv2d.h"     // IWYU pragma: export
#include "snn/dropout.h"    // IWYU pragma: export
#include "snn/flatten.h"    // IWYU pragma: export
#include "snn/layer.h"      // IWYU pragma: export
#include "snn/linear.h"     // IWYU pragma: export
#include "snn/loss.h"       // IWYU pragma: export
#include "snn/model_zoo.h"  // IWYU pragma: export
#include "snn/network.h"    // IWYU pragma: export
#include "snn/optimizer.h"  // IWYU pragma: export
#include "snn/plif.h"       // IWYU pragma: export
#include "snn/pooling.h"    // IWYU pragma: export
#include "snn/surrogate.h"  // IWYU pragma: export
#include "snn/trainer.h"    // IWYU pragma: export

// Systolic-array accelerator model.
#include "systolic/cost_model.h"    // IWYU pragma: export
#include "systolic/cycle_sim.h"     // IWYU pragma: export
#include "systolic/faulty_gemm.h"   // IWYU pragma: export
#include "systolic/mapping.h"       // IWYU pragma: export
#include "systolic/network_cost.h"  // IWYU pragma: export
#include "systolic/pe.h"            // IWYU pragma: export

// Fault machinery.
#include "fault/fault_generator.h"  // IWYU pragma: export
#include "fault/fault_map.h"        // IWYU pragma: export
#include "fault/fault_map_io.h"     // IWYU pragma: export
#include "fault/post_fab_test.h"    // IWYU pragma: export
#include "fault/prune_mask.h"       // IWYU pragma: export

// The paper's contribution.
#include "core/experiment.h"  // IWYU pragma: export
#include "core/falvolt.h"     // IWYU pragma: export
#include "core/fap.h"         // IWYU pragma: export
#include "core/mitigation.h"  // IWYU pragma: export
#include "core/retrain.h"     // IWYU pragma: export
#include "core/sweep.h"       // IWYU pragma: export
