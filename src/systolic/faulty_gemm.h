#pragma once
// Functional (bit-accurate, order-accurate) model of GEMM on the faulty
// systolic array.
//
// For one output element C[i][j], the partial sum traverses the PE column
// j mod cols once per K-tile, visiting logical positions kk = 0 ..
// padded_k-1 in order; at each position the PE accumulates (spike-gated
// add of the pre-stored weight) and its stuck accumulator bits corrupt
// the outgoing value. This engine reproduces that traversal exactly —
// including corruption by idle padding rows and saturation per step — and
// is tested bit-identical against the register-level cycle simulator.
//
// The per-layer plan quantizes the weights and precomputes the fault-event
// schedule once per physical PE column (output columns folding onto the
// same PE column share it). Output rows are independent, so `run` splits
// them across the compute thread pool; each row is evaluated exactly as in
// a serial run, keeping the result bit-identical for any thread count.
//
// Fault handling modes:
//   kCorrupt — stuck bits corrupt the psum (the unmitigated chip);
//   kBypass  — faulty PEs are bypassed by the Fig. 3b mux: their weight
//              contribution is dropped and no corruption occurs (the
//              hardware side of FaP/FalVolt).

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_map.h"
#include "snn/layer.h"
#include "systolic/mapping.h"

namespace falvolt::systolic {

class SystolicGemmEngine final : public snn::GemmEngine {
 public:
  enum class FaultHandling { kCorrupt, kBypass };

  /// `map` may be nullptr (a golden chip: quantization effects only).
  /// The map, when given, must match the array dimensions.
  SystolicGemmEngine(const ArrayConfig& cfg, const fault::FaultMap* map,
                     FaultHandling handling = FaultHandling::kCorrupt);

  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& layer_tag) override;

  /// Drop cached per-layer quantized weights (call after weights change).
  void clear_plans();

  const ArrayConfig& config() const { return cfg_; }
  FaultHandling handling() const { return handling_; }

  /// Worker threads for run(): 0 (default) uses the global pool size,
  /// 1 forces serial evaluation. Output is identical either way.
  void set_threads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Total accumulate steps executed since construction (bench telemetry).
  std::uint64_t accumulate_steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

 private:
  struct FaultEvent {
    int pos = 0;  // traversal position in [0, padded_k)
    fx::StuckBits bits;
  };
  struct LayerPlan {
    std::vector<std::int32_t> qweights;  // [k x n], bypassed weights zeroed
    // Fault-event schedule per *physical* PE column; output column j uses
    // entry j mod cols. Sized min(n, cols) — the PE columns actually hit.
    std::vector<std::vector<FaultEvent>> pe_column_events;
    int k = 0;
    int n = 0;
    int padded_k = 0;
    const float* weight_ptr = nullptr;  // identity of the source weights
  };

  const LayerPlan& plan_for(const std::string& tag, const float* w, int k,
                            int n);
  void run_rows(const LayerPlan& plan, const float* a, float* c, int i0,
                int i1, int n);

  ArrayConfig cfg_;
  const fault::FaultMap* map_;
  FaultHandling handling_;
  int threads_ = 0;
  std::unordered_map<std::string, LayerPlan> plans_;
  std::atomic<std::uint64_t> steps_{0};
};

}  // namespace falvolt::systolic
