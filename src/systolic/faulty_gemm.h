#pragma once
// Functional (bit-accurate, order-accurate) model of GEMM on the faulty
// systolic array.
//
// For one output element C[i][j], the partial sum traverses the PE column
// j mod cols once per K-tile, visiting logical positions kk = 0 ..
// padded_k-1 in order; at each position the PE accumulates (spike-gated
// add of the pre-stored weight) and its stuck accumulator bits corrupt
// the outgoing value. This engine reproduces that traversal exactly —
// including corruption by idle padding rows and saturation per step — and
// is tested bit-identical against the register-level cycle simulator.
//
// The per-layer plan quantizes the weights and precomputes the fault-event
// schedule once per physical PE column (output columns folding onto the
// same PE column share it). Output rows are independent, so `run` splits
// them across the compute thread pool; each row is evaluated exactly as in
// a serial run, keeping the result bit-identical for any thread count.
//
// Hot path: the serial reference walks every (row, column, position) with
// a saturating add per step. The plan additionally carries a packed
// column-contiguous copy of the quantized weights and per-column prefix
// sums of |qweight| — an *overflow headroom proof*. When a traversal
// segment provably cannot saturate (sum of absolute contributions, plus
// the magnitude of the incoming partial sum, stays within the format's
// raw bounds), the saturating add chain is replaced by plain int32 adds,
// vectorized across groups of 8 output columns (compute/simd.h; AVX2 with
// a bit-identical scalar fallback). Segments that might saturate, rows
// with real-valued (non-binary-spike) activations, and builds with
// FALVOLT_FORCE_SCALAR=1 take the exact serial reference loop, so the
// fast path is always byte-for-byte checkable against it.
//
// Fault handling modes:
//   kCorrupt — stuck bits corrupt the psum (the unmitigated chip);
//   kBypass  — faulty PEs are bypassed by the Fig. 3b mux: their weight
//              contribution is dropped and no corruption occurs (the
//              hardware side of FaP/FalVolt).

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_map.h"
#include "snn/layer.h"
#include "systolic/mapping.h"

namespace falvolt::systolic {

class SystolicGemmEngine final : public snn::GemmEngine {
 public:
  enum class FaultHandling { kCorrupt, kBypass };

  /// `map` may be nullptr (a golden chip: quantization effects only).
  /// The map, when given, must match the array dimensions.
  SystolicGemmEngine(const ArrayConfig& cfg, const fault::FaultMap* map,
                     FaultHandling handling = FaultHandling::kCorrupt);

  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& layer_tag) override;

  /// Drop cached per-layer quantized weights. Plans are also invalidated
  /// automatically when the weight *content* changes (the cache keys on a
  /// checksum, not just the buffer address), so this is an optimization
  /// for bulk weight swaps, not a correctness requirement.
  void clear_plans();

  const ArrayConfig& config() const { return cfg_; }
  FaultHandling handling() const { return handling_; }

  /// Worker threads for run(): 0 (default) uses the global pool size,
  /// 1 forces serial evaluation. Output is identical either way.
  void set_threads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Force the exact serial reference loop, disabling the vectorized
  /// saturation-free fast path (tests diff the two byte-for-byte).
  /// Defaults to the FALVOLT_FORCE_SCALAR environment variable.
  void set_force_scalar(bool force) { force_scalar_ = force; }
  bool force_scalar() const { return force_scalar_; }

  /// Total accumulate steps executed since construction (bench
  /// telemetry). Identical across the fast and reference paths.
  std::uint64_t accumulate_steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

  /// Which codepath evaluated each output element since construction
  /// (schedule-only telemetry; the paths are bit-identical by contract):
  ///   vector_cols     columns done 8-wide by accumulate_rows_i32x8
  ///   scalar_cols     fast-path remainder columns (plain scalar adds)
  ///   fallback_cols   exact_binary_column (runtime headroom checks)
  ///   reference_rows  whole rows through the serial reference loop
  /// Column counts cover binary-spike rows only; a reference row counts
  /// once however many columns it holds.
  struct PathCounts {
    std::uint64_t vector_cols = 0;
    std::uint64_t scalar_cols = 0;
    std::uint64_t fallback_cols = 0;
    std::uint64_t reference_rows = 0;
  };
  PathCounts path_counts() const {
    PathCounts p;
    p.vector_cols = vector_cols_.load(std::memory_order_relaxed);
    p.scalar_cols = scalar_cols_.load(std::memory_order_relaxed);
    p.fallback_cols = fallback_cols_.load(std::memory_order_relaxed);
    p.reference_rows = reference_rows_.load(std::memory_order_relaxed);
    return p;
  }

 private:
  struct FaultEvent {
    int pos = 0;  // traversal position in [0, padded_k)
    fx::StuckBits bits;
  };
  struct LayerPlan {
    std::vector<std::int32_t> qweights;  // [k x n], bypassed weights zeroed
    // Packed column-contiguous copy of qweights ([n x k], column j at
    // offset j*k): the per-column scalar fast path walks one column
    // sequentially instead of striding by n.
    std::vector<std::int32_t> qweights_cols;
    // Overflow-headroom proof: per column j, prefix sums of |qweight|
    // down the column ([n x (k+1)], prefix[j*(k+1) + t] = sum of the
    // first t entries). A traversal segment [lo, hi) of column j sums to
    // at most prefix[hi'] - prefix[lo] in magnitude (hi' = min(hi, k)).
    std::vector<std::int64_t> col_abs_prefix;
    // Per output column: 1 when the whole column is fast-path eligible —
    // no fault events on its PE column and the full-column headroom fits
    // the format's raw bounds.
    std::vector<std::uint8_t> col_fast;
    // Fault-event schedule per *physical* PE column; output column j uses
    // entry j mod cols. Sized min(n, cols) — the PE columns actually hit.
    std::vector<std::vector<FaultEvent>> pe_column_events;
    int k = 0;
    int n = 0;
    int padded_k = 0;
    const float* weight_ptr = nullptr;   // last seen buffer (diagnostic)
    std::uint64_t weight_hash = 0;       // content identity of the weights
  };

  const LayerPlan& plan_for(const std::string& tag, const float* w, int k,
                            int n);
  void run_rows(const LayerPlan& plan, const float* a, float* c, int i0,
                int i1, int n);
  /// The exact serial reference for one output row (all columns):
  /// per-step saturating accumulate + fault events, any activation kind.
  void reference_row(const LayerPlan& plan, const float* arow, float* crow,
                     int n, std::uint64_t& local_steps) const;
  /// One column of a binary-spike row via the event/segment walk, with
  /// per-segment runtime headroom checks. `nz` holds the row's nonzero
  /// positions (all exactly 1.0f), sorted ascending.
  void exact_binary_column(const LayerPlan& plan, const std::vector<int>& nz,
                           int j, float* crow,
                           std::uint64_t& local_steps) const;

  ArrayConfig cfg_;
  const fault::FaultMap* map_;
  FaultHandling handling_;
  int threads_ = 0;
  bool force_scalar_ = false;
  std::unordered_map<std::string, LayerPlan> plans_;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> vector_cols_{0};
  std::atomic<std::uint64_t> scalar_cols_{0};
  std::atomic<std::uint64_t> fallback_cols_{0};
  std::atomic<std::uint64_t> reference_rows_{0};
};

}  // namespace falvolt::systolic
