#pragma once
// Behavioural model of one processing element (paper Fig. 3).
//
// A systolicSNN PE has no multiplier: a 1-bit input spike gates the
// accumulation of the pre-stored fixed-point weight into the column
// partial sum through an adder-subtractor (the subtract path handles
// negative weights). A permanently faulty PE corrupts its accumulator
// output every cycle; the bypass mux (Fig. 3b) instead forwards the
// incoming partial sum untouched, at the cost of dropping this PE's
// contribution.

#include <cstdint>

#include "fixed/fixed_format.h"
#include "fixed/stuck_bits.h"

namespace falvolt::systolic {

/// One weight-stationary PE.
class ProcessingElement {
 public:
  ProcessingElement() = default;

  /// Pre-store the weight (raw fixed-point).
  void load_weight(std::int32_t raw) { weight_ = raw; }
  std::int32_t weight() const { return weight_; }

  /// Attach the manufacturing defect of this PE (none by default).
  void set_stuck_bits(const fx::StuckBits& bits) { stuck_ = bits; }
  const fx::StuckBits& stuck_bits() const { return stuck_; }
  bool faulty() const { return !stuck_.none(); }

  /// Engage the hardware bypass mux: the PE forwards psum_in unchanged.
  void set_bypassed(bool bypassed) { bypassed_ = bypassed; }
  bool bypassed() const { return bypassed_; }

  /// One accumulate step: psum_out = corrupt(psum_in + spike * weight).
  /// The stuck bits apply to the accumulator *output*, i.e. also when the
  /// spike is 0 and the psum merely passes through the accumulator.
  std::int32_t step(bool spike, std::int32_t psum_in,
                    const fx::FixedFormat& fmt) const {
    if (bypassed_) return psum_in;
    std::int32_t acc = spike ? fmt.add(psum_in, weight_) : psum_in;
    if (!stuck_.none()) acc = stuck_.apply(acc, fmt);
    return acc;
  }

  /// Spike bookkeeping for the inference-phase counter in Fig. 3a.
  void count_spike(bool spike) { spike_count_ += spike ? 1 : 0; }
  std::uint64_t spike_count() const { return spike_count_; }
  void reset_spike_count() { spike_count_ = 0; }

 private:
  std::int32_t weight_ = 0;
  fx::StuckBits stuck_;
  bool bypassed_ = false;
  std::uint64_t spike_count_ = 0;
};

}  // namespace falvolt::systolic
