#pragma once
// Weight-stationary mapping of GEMM operands onto the PE grid.

#include <string>

#include "fixed/fixed_format.h"

namespace falvolt::systolic {

/// Static configuration of the accelerator array.
struct ArrayConfig {
  int rows = 256;
  int cols = 256;
  fx::FixedFormat format = fx::FixedFormat::q8_8();

  int total_pes() const { return rows * cols; }
  std::string to_string() const;
};

/// Physical PE coordinate.
struct PeCoord {
  int row = 0;
  int col = 0;
  bool operator==(const PeCoord& o) const {
    return row == o.row && col == o.col;
  }
};

/// PE executing weight element (k, m) of a [K x M] GEMM: the array is
/// folded over both dimensions, so (k, m) -> (k mod rows, m mod cols).
PeCoord pe_for_weight(int k, int m, const ArrayConfig& cfg);

/// Number of weight elements of a [K x M] layer that fold onto PE `pe`
/// (the blast radius of bypassing that PE for this layer).
int weights_on_pe(int k_dim, int m_dim, PeCoord pe, const ArrayConfig& cfg);

/// Padded K extent: the psum traverses whole columns, so a GEMM with
/// K <= rows still passes through all `rows` PEs (idle rows hold zero
/// weights but their stuck accumulator bits still corrupt the psum).
int padded_k(int k_dim, const ArrayConfig& cfg);

}  // namespace falvolt::systolic
