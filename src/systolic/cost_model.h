#pragma once
// First-order area / energy / latency model of the systolicSNN.
//
// The paper's hardware claims that this model captures: (a) an SNN PE is
// an adder-subtractor + accumulator (no multiplier), so it is much
// cheaper than an ANN MAC PE; (b) the Fig. 3b bypass circuitry costs
// about 8% extra PE area; (c) a weight-stationary GEMM of M vectors over
// a [K x N] matrix takes (M + rows + width - 1) cycles per tile.

#include <cstdint>
#include <string>
#include <vector>

#include "systolic/mapping.h"

namespace falvolt::systolic {

/// Technology/unit-cost assumptions (defaults are representative 28nm-ish
/// numbers; only ratios matter for the reported comparisons).
struct CostModelConfig {
  double adder_area_um2 = 120.0;       ///< fixed-point adder-subtractor
  double accumulator_area_um2 = 80.0;  ///< psum register
  double control_area_um2 = 40.0;      ///< counter + ctrl per PE
  double multiplier_area_um2 = 620.0;  ///< what an ANN MAC would add
  double bypass_mux_fraction = 0.08;   ///< paper: "only 8% area overhead"
  double energy_per_add_pj = 0.03;
  double energy_per_mult_pj = 0.20;
  double energy_per_hop_pj = 0.01;     ///< register-to-register transfer
  double clock_ghz = 1.0;
};

/// Cost of one GEMM ([M x K] spikes times [K x N] weights) on the array.
struct GemmCost {
  std::uint64_t cycles = 0;
  std::uint64_t tiles = 0;
  double latency_us = 0.0;
  double energy_nj = 0.0;       ///< with the given spike density
  double utilization = 0.0;     ///< busy PEs / total PEs
};

/// Whole-array area in um^2, with and without bypass circuitry.
struct AreaReport {
  double pe_area_um2 = 0.0;          ///< one PE, no bypass
  double pe_area_bypass_um2 = 0.0;   ///< one PE with bypass mux
  double array_area_mm2 = 0.0;
  double array_area_bypass_mm2 = 0.0;
  double bypass_overhead_fraction = 0.0;
  double ann_mac_array_area_mm2 = 0.0;  ///< same grid built from MAC PEs
};

AreaReport estimate_area(const ArrayConfig& array,
                         const CostModelConfig& cfg = {});

/// Analytical GEMM cost; `spike_density` is the fraction of nonzero
/// spikes in A (drives adder activations).
GemmCost estimate_gemm(const ArrayConfig& array, int m, int k, int n,
                       double spike_density,
                       const CostModelConfig& cfg = {});

/// Latency/energy penalty of re-executing every inference R times
/// (the redundant-execution alternative the paper argues against).
GemmCost estimate_reexecution(const GemmCost& base, int redundancy);

}  // namespace falvolt::systolic
