#include "systolic/faulty_gemm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compute/thread_pool.h"

namespace falvolt::systolic {

SystolicGemmEngine::SystolicGemmEngine(const ArrayConfig& cfg,
                                       const fault::FaultMap* map,
                                       FaultHandling handling)
    : cfg_(cfg), map_(map), handling_(handling) {
  if (map_ && (map_->rows() != cfg.rows || map_->cols() != cfg.cols)) {
    throw std::invalid_argument(
        "SystolicGemmEngine: fault map does not match array dimensions");
  }
}

void SystolicGemmEngine::clear_plans() { plans_.clear(); }

const SystolicGemmEngine::LayerPlan& SystolicGemmEngine::plan_for(
    const std::string& tag, const float* w, int k, int n) {
  auto it = plans_.find(tag);
  if (it != plans_.end() && it->second.weight_ptr == w &&
      it->second.k == k && it->second.n == n) {
    return it->second;
  }
  LayerPlan plan;
  plan.k = k;
  plan.n = n;
  plan.padded_k = padded_k(k, cfg_);
  plan.weight_ptr = w;
  plan.qweights.resize(static_cast<std::size_t>(k) * n);
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      const bool bypassed =
          handling_ == FaultHandling::kBypass && map_ &&
          map_->is_faulty(kk % cfg_.rows, j % cfg_.cols);
      plan.qweights[static_cast<std::size_t>(kk) * n + j] =
          bypassed ? 0
                   : cfg_.format.quantize(
                         w[static_cast<std::size_t>(kk) * n + j]);
    }
  }
  // One event schedule per physical PE column: output columns folding
  // onto the same PE column traverse the same faulty accumulators, so the
  // schedule is shared instead of being replicated per output column.
  const int used_cols = std::min(n, cfg_.cols);
  plan.pe_column_events.assign(static_cast<std::size_t>(used_cols), {});
  if (map_ && handling_ == FaultHandling::kCorrupt) {
    for (int pe_col = 0; pe_col < used_cols; ++pe_col) {
      auto& events =
          plan.pe_column_events[static_cast<std::size_t>(pe_col)];
      for (int pos = 0; pos < plan.padded_k; ++pos) {
        const fx::StuckBits* bits = map_->at(pos % cfg_.rows, pe_col);
        if (bits) events.push_back(FaultEvent{pos, *bits});
      }
    }
  }
  auto [ins, _] = plans_.insert_or_assign(tag, std::move(plan));
  return ins->second;
}

void SystolicGemmEngine::run_rows(const LayerPlan& plan, const float* a,
                                  float* c, int i0, int i1, int n) {
  const fx::FixedFormat& fmt = cfg_.format;
  std::uint64_t local_steps = 0;

  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * plan.k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      // j mod cols < min(n, cols) == pe_column_events.size() always.
      const std::vector<FaultEvent>& events =
          plan.pe_column_events[static_cast<std::size_t>(j % cfg_.cols)];
      std::int32_t acc = 0;

      // Accumulate weights over positions [lo, hi) of the traversal.
      const auto accumulate_segment = [&](int lo, int hi) {
        const int stop = std::min(hi, plan.k);  // padding rows hold w == 0
        for (int kk = lo; kk < stop; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          std::int32_t contrib =
              plan.qweights[static_cast<std::size_t>(kk) * n + j];
          if (av != 1.0f) {
            // Real-valued activation (spike-encoder input): fixed multiply.
            contrib = fmt.mul(contrib, fmt.quantize(av));
          }
          acc = fmt.add(acc, contrib);
          ++local_steps;
        }
      };

      if (events.empty()) {
        accumulate_segment(0, plan.padded_k);
      } else {
        int cursor = 0;
        for (const FaultEvent& ev : events) {
          // All accumulation strictly before the faulty position, then the
          // faulty PE's own accumulate step, then its corruption.
          accumulate_segment(cursor, ev.pos);
          accumulate_segment(ev.pos, ev.pos + 1);
          acc = ev.bits.apply(acc, fmt);
          cursor = ev.pos + 1;
        }
        accumulate_segment(cursor, plan.padded_k);
      }
      crow[j] = static_cast<float>(fmt.dequantize(acc));
    }
  }
  steps_.fetch_add(local_steps, std::memory_order_relaxed);
}

void SystolicGemmEngine::run(const float* a, const float* w, float* c, int m,
                             int k, int n, const std::string& layer_tag) {
  const LayerPlan& plan = plan_for(layer_tag, w, k, n);
  const int threads =
      threads_ > 0 ? threads_ : compute::global_threads();
  if (threads > 1 && m > 1) {
    // Row chunks at least ceil(m/threads) wide cap the effective
    // concurrency at the requested width even on a larger pool.
    const int grain = (m + threads - 1) / threads;
    compute::global_pool().parallel_for(0, m, grain,
                                        [&](int i0, int i1) {
                                          run_rows(plan, a, c, i0, i1, n);
                                        });
  } else {
    run_rows(plan, a, c, 0, m, n);
  }
}

}  // namespace falvolt::systolic
