#include "systolic/faulty_gemm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/env.h"
#include "compute/simd.h"
#include "compute/thread_pool.h"
#include "obs/metrics.h"

namespace falvolt::systolic {

namespace {

// Content checksum of a weight buffer (64-bit FNV-1a over 8-byte words,
// byte-wise tail). Guards the plan cache against the stale-plan hazard: a
// reallocated or in-place-mutated tensor landing at a previously seen
// address must not silently reuse the old quantized plan.
std::uint64_t hash_weights(const float* w, std::size_t count) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 14695981039346656037ull ^ count;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(w);
  std::size_t bytes = count * sizeof(float);
  while (bytes >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kPrime;
    p += 8;
    bytes -= 8;
  }
  while (bytes > 0) {
    h = (h ^ *p++) * kPrime;
    --bytes;
  }
  return h;
}

}  // namespace

SystolicGemmEngine::SystolicGemmEngine(const ArrayConfig& cfg,
                                       const fault::FaultMap* map,
                                       FaultHandling handling)
    : cfg_(cfg), map_(map), handling_(handling) {
  if (map_ && (map_->rows() != cfg.rows || map_->cols() != cfg.cols)) {
    throw std::invalid_argument(
        "SystolicGemmEngine: fault map does not match array dimensions");
  }
  force_scalar_ = common::env_int_or("FALVOLT_FORCE_SCALAR", 0) != 0;
}

void SystolicGemmEngine::clear_plans() { plans_.clear(); }

const SystolicGemmEngine::LayerPlan& SystolicGemmEngine::plan_for(
    const std::string& tag, const float* w, int k, int n) {
  const std::uint64_t hash =
      hash_weights(w, static_cast<std::size_t>(k) * n);
  auto it = plans_.find(tag);
  if (it != plans_.end() && it->second.weight_hash == hash &&
      it->second.k == k && it->second.n == n) {
    return it->second;
  }
  LayerPlan plan;
  plan.k = k;
  plan.n = n;
  plan.padded_k = padded_k(k, cfg_);
  plan.weight_ptr = w;
  plan.weight_hash = hash;
  plan.qweights.resize(static_cast<std::size_t>(k) * n);
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      const bool bypassed =
          handling_ == FaultHandling::kBypass && map_ &&
          map_->is_faulty(kk % cfg_.rows, j % cfg_.cols);
      plan.qweights[static_cast<std::size_t>(kk) * n + j] =
          bypassed ? 0
                   : cfg_.format.quantize(
                         w[static_cast<std::size_t>(kk) * n + j]);
    }
  }
  // One event schedule per physical PE column: output columns folding
  // onto the same PE column traverse the same faulty accumulators, so the
  // schedule is shared instead of being replicated per output column.
  const int used_cols = std::min(n, cfg_.cols);
  plan.pe_column_events.assign(static_cast<std::size_t>(used_cols), {});
  if (map_ && handling_ == FaultHandling::kCorrupt) {
    for (int pe_col = 0; pe_col < used_cols; ++pe_col) {
      auto& events =
          plan.pe_column_events[static_cast<std::size_t>(pe_col)];
      for (int pos = 0; pos < plan.padded_k; ++pos) {
        const fx::StuckBits* bits = map_->at(pos % cfg_.rows, pe_col);
        if (bits) events.push_back(FaultEvent{pos, *bits});
      }
    }
  }
  // Fast-path metadata: a packed column-contiguous weight copy and the
  // per-column |qweight| prefix sums backing the overflow headroom proof.
  plan.qweights_cols.resize(static_cast<std::size_t>(n) * k);
  plan.col_abs_prefix.resize(static_cast<std::size_t>(n) * (k + 1));
  plan.col_fast.assign(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    std::int32_t* col = plan.qweights_cols.data() +
                        static_cast<std::size_t>(j) * k;
    std::int64_t* prefix = plan.col_abs_prefix.data() +
                           static_cast<std::size_t>(j) * (k + 1);
    prefix[0] = 0;
    for (int kk = 0; kk < k; ++kk) {
      const std::int32_t q =
          plan.qweights[static_cast<std::size_t>(kk) * n + j];
      col[kk] = q;
      prefix[kk + 1] = prefix[kk] + std::abs(static_cast<std::int64_t>(q));
    }
    const bool no_events =
        plan.pe_column_events[static_cast<std::size_t>(j % cfg_.cols)]
            .empty();
    plan.col_fast[static_cast<std::size_t>(j)] =
        no_events && cfg_.format.saturation_free(prefix[k]) ? 1 : 0;
  }
  auto [ins, _] = plans_.insert_or_assign(tag, std::move(plan));
  return ins->second;
}

void SystolicGemmEngine::reference_row(const LayerPlan& plan,
                                       const float* arow, float* crow,
                                       int n,
                                       std::uint64_t& local_steps) const {
  const fx::FixedFormat& fmt = cfg_.format;
  for (int j = 0; j < n; ++j) {
    // j mod cols < min(n, cols) == pe_column_events.size() always.
    const std::vector<FaultEvent>& events =
        plan.pe_column_events[static_cast<std::size_t>(j % cfg_.cols)];
    std::int32_t acc = 0;

    // Accumulate weights over positions [lo, hi) of the traversal.
    const auto accumulate_segment = [&](int lo, int hi) {
      const int stop = std::min(hi, plan.k);  // padding rows hold w == 0
      for (int kk = lo; kk < stop; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        std::int32_t contrib =
            plan.qweights[static_cast<std::size_t>(kk) * plan.n + j];
        if (av != 1.0f) {
          // Real-valued activation (spike-encoder input): fixed multiply.
          contrib = fmt.mul(contrib, fmt.quantize(av));
        }
        acc = fmt.add(acc, contrib);
        ++local_steps;
      }
    };

    if (events.empty()) {
      accumulate_segment(0, plan.padded_k);
    } else {
      int cursor = 0;
      for (const FaultEvent& ev : events) {
        // All accumulation strictly before the faulty position, then the
        // faulty PE's own accumulate step, then its corruption.
        accumulate_segment(cursor, ev.pos);
        accumulate_segment(ev.pos, ev.pos + 1);
        acc = ev.bits.apply(acc, fmt);
        cursor = ev.pos + 1;
      }
      accumulate_segment(cursor, plan.padded_k);
    }
    crow[j] = static_cast<float>(fmt.dequantize(acc));
  }
}

void SystolicGemmEngine::exact_binary_column(
    const LayerPlan& plan, const std::vector<int>& nz, int j, float* crow,
    std::uint64_t& local_steps) const {
  const fx::FixedFormat& fmt = cfg_.format;
  const std::vector<FaultEvent>& events =
      plan.pe_column_events[static_cast<std::size_t>(j % cfg_.cols)];
  const std::int32_t* col =
      plan.qweights_cols.data() + static_cast<std::size_t>(j) * plan.k;
  const std::int64_t* prefix =
      plan.col_abs_prefix.data() +
      static_cast<std::size_t>(j) * (plan.k + 1);
  std::int32_t acc = 0;

  // Segment walk identical to the reference, but each segment whose
  // headroom proof holds at runtime (incoming |acc| + segment |qweight|
  // sum within the raw bounds) uses plain adds — bit-identical because no
  // step can saturate.
  const auto accumulate_segment = [&](int lo, int hi) {
    const int stop = std::min(hi, plan.k);  // padding rows hold w == 0
    if (lo >= stop) return;
    auto it = std::lower_bound(nz.begin(), nz.end(), lo);
    const std::int64_t headroom = prefix[stop] - prefix[lo];
    if (fmt.saturation_free(std::abs(static_cast<std::int64_t>(acc)) +
                            headroom)) {
      for (; it != nz.end() && *it < stop; ++it) {
        acc += col[*it];
        ++local_steps;
      }
    } else {
      for (; it != nz.end() && *it < stop; ++it) {
        acc = fmt.add(acc, col[*it]);
        ++local_steps;
      }
    }
  };

  if (events.empty()) {
    accumulate_segment(0, plan.padded_k);
  } else {
    int cursor = 0;
    for (const FaultEvent& ev : events) {
      accumulate_segment(cursor, ev.pos);
      accumulate_segment(ev.pos, ev.pos + 1);
      acc = ev.bits.apply(acc, fmt);
      cursor = ev.pos + 1;
    }
    accumulate_segment(cursor, plan.padded_k);
  }
  crow[j] = static_cast<float>(fmt.dequantize(acc));
}

void SystolicGemmEngine::run_rows(const LayerPlan& plan, const float* a,
                                  float* c, int i0, int i1, int n) {
  const fx::FixedFormat& fmt = cfg_.format;
  std::uint64_t local_steps = 0;
  // Path-taken telemetry, accumulated locally like local_steps so the
  // hot loops pay plain increments and each worker publishes once.
  std::uint64_t local_vector = 0, local_scalar = 0, local_fallback = 0,
                local_reference = 0;
  std::vector<int> nz;  // nonzero positions of the current row
  nz.reserve(static_cast<std::size_t>(plan.k));

  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * plan.k;
    float* crow = c + static_cast<std::size_t>(i) * n;

    // One pass over the row: collect nonzero positions and detect
    // whether every nonzero activation is a binary spike (exactly 1.0f).
    // The nz list is then shared by every output column of this row.
    nz.clear();
    bool binary = true;
    for (int kk = 0; kk < plan.k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      if (av != 1.0f) binary = false;
      nz.push_back(kk);
    }

    if (force_scalar_ || !binary) {
      // Real-valued activations need the per-step fixed multiply; the
      // reference loop handles them (and is the byte-for-byte oracle the
      // FALVOLT_FORCE_SCALAR knob pins every row to).
      reference_row(plan, arow, crow, n, local_steps);
      ++local_reference;
      continue;
    }

    const int count = static_cast<int>(nz.size());
    int j = 0;
    for (; j + compute::kI32Lanes <= n; j += compute::kI32Lanes) {
      bool group_fast = true;
      for (int lane = 0; lane < compute::kI32Lanes; ++lane) {
        group_fast = group_fast &&
                     plan.col_fast[static_cast<std::size_t>(j + lane)];
      }
      if (group_fast) {
        // 8 adjacent fault-free, headroom-proven columns: one vector
        // accumulator, one load+add per nonzero input position.
        std::int32_t accs[compute::kI32Lanes];
        compute::accumulate_rows_i32x8(plan.qweights.data() + j, n,
                                       nz.data(), count, accs);
        for (int lane = 0; lane < compute::kI32Lanes; ++lane) {
          crow[j + lane] = static_cast<float>(fmt.dequantize(accs[lane]));
        }
        local_steps +=
            static_cast<std::uint64_t>(compute::kI32Lanes) * count;
        local_vector += static_cast<std::uint64_t>(compute::kI32Lanes);
        continue;
      }
      for (int lane = 0; lane < compute::kI32Lanes; ++lane) {
        exact_binary_column(plan, nz, j + lane, crow, local_steps);
        ++local_fallback;
      }
    }
    for (; j < n; ++j) {
      if (plan.col_fast[static_cast<std::size_t>(j)]) {
        const std::int32_t* col = plan.qweights_cols.data() +
                                  static_cast<std::size_t>(j) * plan.k;
        std::int32_t acc = 0;
        for (int t = 0; t < count; ++t) acc += col[nz[static_cast<std::size_t>(t)]];
        crow[j] = static_cast<float>(fmt.dequantize(acc));
        local_steps += static_cast<std::uint64_t>(count);
        ++local_scalar;
      } else {
        exact_binary_column(plan, nz, j, crow, local_steps);
        ++local_fallback;
      }
    }
  }
  steps_.fetch_add(local_steps, std::memory_order_relaxed);
  vector_cols_.fetch_add(local_vector, std::memory_order_relaxed);
  scalar_cols_.fetch_add(local_scalar, std::memory_order_relaxed);
  fallback_cols_.fetch_add(local_fallback, std::memory_order_relaxed);
  reference_rows_.fetch_add(local_reference, std::memory_order_relaxed);
  // Fleet-wide mirrors of the same counts (obs/metrics.h), so the path
  // mix shows up in --metrics-json without threading engine pointers up
  // through the sweep layers.
  static obs::Counter& g_vector = obs::counter("kernel.faulty_gemm.vector_cols");
  static obs::Counter& g_scalar = obs::counter("kernel.faulty_gemm.scalar_cols");
  static obs::Counter& g_fallback =
      obs::counter("kernel.faulty_gemm.fallback_cols");
  static obs::Counter& g_reference =
      obs::counter("kernel.faulty_gemm.reference_rows");
  static obs::Counter& g_steps = obs::counter("kernel.faulty_gemm.steps");
  if (local_vector) g_vector.add(local_vector);
  if (local_scalar) g_scalar.add(local_scalar);
  if (local_fallback) g_fallback.add(local_fallback);
  if (local_reference) g_reference.add(local_reference);
  if (local_steps) g_steps.add(local_steps);
}

void SystolicGemmEngine::run(const float* a, const float* w, float* c, int m,
                             int k, int n, const std::string& layer_tag) {
  const LayerPlan& plan = plan_for(layer_tag, w, k, n);
  const int threads =
      threads_ > 0 ? threads_ : compute::global_threads();
  if (threads > 1 && m > 1) {
    // Row chunks at least ceil(m/threads) wide cap the effective
    // concurrency at the requested width even on a larger pool.
    const int grain = (m + threads - 1) / threads;
    compute::global_pool().parallel_for(0, m, grain,
                                        [&](int i0, int i1) {
                                          run_rows(plan, a, c, i0, i1, n);
                                        });
  } else {
    run_rows(plan, a, c, 0, m, n);
  }
}

}  // namespace falvolt::systolic
