#pragma once
// Register-level, cycle-accurate weight-stationary systolic array
// simulator.
//
// Dataflow (paper Fig. 1): weights are pre-stored, binary spikes enter at
// the left edge (input row r is skewed by r cycles) and travel right one
// PE per cycle; partial sums travel down one PE per cycle, each PE
// accumulating its weight when the passing spike is 1 and corrupting the
// psum with its stuck bits. GEMMs larger than the array are tiled over
// both K (psums re-enter the top, skewed) and N.
//
// This simulator exists as the ground truth for the fast functional
// engine (they are tested bit-identical) and to report cycle counts for
// the cost model. It is O(cycles * rows * cols), so use it with small
// arrays; the figure benches use the functional engine.

#include <cstdint>
#include <vector>

#include "fault/fault_map.h"
#include "systolic/mapping.h"
#include "systolic/pe.h"
#include "tensor/tensor.h"

namespace falvolt::systolic {

/// Telemetry from a cycle-level run.
struct CycleStats {
  std::uint64_t cycles = 0;
  std::uint64_t tiles = 0;
  std::uint64_t spikes_in = 0;       ///< nonzero spikes fed to the array
  std::uint64_t accumulates = 0;     ///< adder activations
};

class SystolicArraySim {
 public:
  /// `map` may be nullptr (golden chip). `bypass_faulty` engages the
  /// Fig. 3b mux on every faulty PE.
  SystolicArraySim(const ArrayConfig& cfg, const fault::FaultMap* map,
                   bool bypass_faulty = false);

  /// C = A * W with A [M x K] strictly binary (0/1 spikes) and W [K x N]
  /// float (quantized internally). Returns float C; `stats` (optional)
  /// receives cycle telemetry.
  tensor::Tensor matmul(const tensor::Tensor& a, const tensor::Tensor& w,
                        CycleStats* stats = nullptr);

  const ArrayConfig& config() const { return cfg_; }

 private:
  /// Simulate one (K-tile, N-tile) pass: weights for logical rows
  /// [k0, k0+rows) and columns [n0, n0+width) are loaded; `psums_in` holds
  /// the raw psum per (input vector, local column) entering from the
  /// previous K-tile and is replaced with this tile's outputs.
  void run_tile(const tensor::Tensor& a, const tensor::Tensor& w, int k0,
                int n0, int width, std::vector<std::int32_t>& psums_in,
                CycleStats& stats);

  ArrayConfig cfg_;
  const fault::FaultMap* map_;
  bool bypass_faulty_;
  std::vector<ProcessingElement> pes_;  // rows x cols, row-major
};

}  // namespace falvolt::systolic
