#pragma once
// Whole-network deployment cost report: maps every GEMM-lowered layer of
// a spiking network onto the systolic array's analytical cost model and
// aggregates latency / energy / utilization per inference time step.
//
// Used by the examples to show the hardware economics of the paper's
// arguments (SNN adder-PEs vs ANN MAC-PEs, bypass overhead, and the cost
// of the re-execution alternative FalVolt avoids).

#include <string>
#include <vector>

#include "data/dataset.h"
#include "snn/network.h"
#include "systolic/cost_model.h"

namespace falvolt::systolic {

/// Cost of one layer's GEMM on the array.
struct LayerCostReport {
  std::string layer;
  int gemm_m = 0;  ///< rows fed per time step (pixels or batch)
  int gemm_k = 0;
  int gemm_n = 0;
  double spike_density = 0.0;
  GemmCost cost;
};

/// Aggregate over all layers of one inference time step.
struct NetworkCostReport {
  std::vector<LayerCostReport> layers;
  std::uint64_t total_cycles = 0;
  double total_latency_us = 0.0;
  double total_energy_nj = 0.0;
  /// Latency/energy for a full T-step inference.
  int time_steps = 1;
  double inference_latency_us() const {
    return total_latency_us * time_steps;
  }
  double inference_energy_nj() const { return total_energy_nj * time_steps; }
};

/// Estimate the per-time-step cost of running `net` on `array` for inputs
/// shaped like the dataset's samples. `spike_density` approximates the
/// fraction of active spikes entering each layer (typically 0.02-0.1 for
/// these workloads); pass 0 to use the density measured by the probe
/// forward pass instead.
NetworkCostReport estimate_network_cost(snn::Network& net,
                                        const ArrayConfig& array,
                                        const data::Dataset& dataset,
                                        double spike_density = 0.05,
                                        const CostModelConfig& cfg = {});

/// Measure the actual mean spike density entering each matmul layer by
/// running `samples` inputs through the network in eval mode. Returns one
/// density per matmul layer, in network order (the encoder conv sees the
/// analog input; its density is the fraction of nonzero pixels).
std::vector<double> measure_spike_densities(snn::Network& net,
                                            const data::Dataset& dataset,
                                            int samples = 8);

}  // namespace falvolt::systolic
