#include "systolic/network_cost.h"

#include <map>
#include <stdexcept>

#include "snn/trainer.h"
#include "tensor/gemm.h"

namespace falvolt::systolic {

namespace {

// GemmEngine probe: computes with the float kernel while recording the
// GEMM dimensions and input spike density seen by each layer.
class RecordingEngine final : public snn::GemmEngine {
 public:
  struct Record {
    int m = 0, k = 0, n = 0;
    double nonzero = 0.0;
    double total = 0.0;
    int order = 0;  // first-seen order, to keep network layer order
  };

  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& tag) override {
    tensor::gemm(a, w, c, m, k, n);
    Record& r = records_[tag];
    if (r.total == 0.0) r.order = next_order_++;
    r.m = m;
    r.k = k;
    r.n = n;
    const std::size_t count = static_cast<std::size_t>(m) * k;
    for (std::size_t i = 0; i < count; ++i) {
      if (a[i] != 0.0f) r.nonzero += 1.0;
    }
    r.total += static_cast<double>(count);
  }

  /// Records in first-seen (network) order.
  std::vector<std::pair<std::string, Record>> ordered() const {
    std::vector<std::pair<std::string, Record>> out(records_.begin(),
                                                    records_.end());
    std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
      return x.second.order < y.second.order;
    });
    return out;
  }

 private:
  std::map<std::string, Record> records_;
  int next_order_ = 0;
};

RecordingEngine probe_network(snn::Network& net,
                              const data::Dataset& dataset, int samples) {
  if (dataset.size() == 0) {
    throw std::invalid_argument("probe_network: empty dataset");
  }
  RecordingEngine engine;
  net.set_gemm_engine(&engine);
  std::vector<int> idx;
  for (int i = 0; i < std::min(samples, dataset.size()); ++i) {
    idx.push_back(i);
  }
  snn::infer_rates(net, dataset, idx);
  net.set_gemm_engine(nullptr);
  return engine;
}

}  // namespace

std::vector<double> measure_spike_densities(snn::Network& net,
                                            const data::Dataset& dataset,
                                            int samples) {
  const RecordingEngine engine = probe_network(net, dataset, samples);
  std::vector<double> out;
  for (const auto& [tag, r] : engine.ordered()) {
    out.push_back(r.total > 0.0 ? r.nonzero / r.total : 0.0);
  }
  return out;
}

NetworkCostReport estimate_network_cost(snn::Network& net,
                                        const ArrayConfig& array,
                                        const data::Dataset& dataset,
                                        double spike_density,
                                        const CostModelConfig& cfg) {
  const RecordingEngine engine = probe_network(net, dataset, /*samples=*/1);
  NetworkCostReport report;
  report.time_steps = dataset.time_steps();
  for (const auto& [tag, r] : engine.ordered()) {
    LayerCostReport lr;
    lr.layer = tag;
    // The probe ran one sample per step; per-step GEMM rows = r.m.
    lr.gemm_m = r.m;
    lr.gemm_k = r.k;
    lr.gemm_n = r.n;
    lr.spike_density =
        spike_density > 0.0 ? spike_density
                            : (r.total > 0.0 ? r.nonzero / r.total : 0.0);
    lr.cost = estimate_gemm(array, r.m, r.k, r.n, lr.spike_density, cfg);
    report.total_cycles += lr.cost.cycles;
    report.total_latency_us += lr.cost.latency_us;
    report.total_energy_nj += lr.cost.energy_nj;
    report.layers.push_back(std::move(lr));
  }
  return report;
}

}  // namespace falvolt::systolic
