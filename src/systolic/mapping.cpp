#include "systolic/mapping.h"

#include <sstream>
#include <stdexcept>

namespace falvolt::systolic {

std::string ArrayConfig::to_string() const {
  std::ostringstream os;
  os << rows << "x" << cols << " " << format.to_string();
  return os.str();
}

PeCoord pe_for_weight(int k, int m, const ArrayConfig& cfg) {
  if (k < 0 || m < 0) {
    throw std::invalid_argument("pe_for_weight: negative index");
  }
  return PeCoord{k % cfg.rows, m % cfg.cols};
}

int weights_on_pe(int k_dim, int m_dim, PeCoord pe, const ArrayConfig& cfg) {
  if (pe.row < 0 || pe.row >= cfg.rows || pe.col < 0 || pe.col >= cfg.cols) {
    throw std::invalid_argument("weights_on_pe: PE out of range");
  }
  // Count of k in [0, k_dim) with k % rows == pe.row, times same for m.
  const auto fold_count = [](int extent, int residue, int modulus) {
    if (residue >= extent) return 0;
    return (extent - residue - 1) / modulus + 1;
  };
  return fold_count(k_dim, pe.row, cfg.rows) *
         fold_count(m_dim, pe.col, cfg.cols);
}

int padded_k(int k_dim, const ArrayConfig& cfg) {
  if (k_dim <= 0) throw std::invalid_argument("padded_k: k_dim must be > 0");
  return ((k_dim + cfg.rows - 1) / cfg.rows) * cfg.rows;
}

}  // namespace falvolt::systolic
