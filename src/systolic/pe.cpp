#include "systolic/pe.h"

// ProcessingElement is header-only (hot path, inlined); this TU compiles
// the header standalone.
