#include "systolic/cost_model.h"

#include <stdexcept>

namespace falvolt::systolic {

AreaReport estimate_area(const ArrayConfig& array,
                         const CostModelConfig& cfg) {
  AreaReport r;
  r.pe_area_um2 =
      cfg.adder_area_um2 + cfg.accumulator_area_um2 + cfg.control_area_um2;
  r.pe_area_bypass_um2 = r.pe_area_um2 * (1.0 + cfg.bypass_mux_fraction);
  const double pes = static_cast<double>(array.total_pes());
  r.array_area_mm2 = r.pe_area_um2 * pes * 1e-6;
  r.array_area_bypass_mm2 = r.pe_area_bypass_um2 * pes * 1e-6;
  r.bypass_overhead_fraction =
      r.array_area_bypass_mm2 / r.array_area_mm2 - 1.0;
  r.ann_mac_array_area_mm2 =
      (r.pe_area_um2 + cfg.multiplier_area_um2) * pes * 1e-6;
  return r;
}

GemmCost estimate_gemm(const ArrayConfig& array, int m, int k, int n,
                       double spike_density, const CostModelConfig& cfg) {
  if (m <= 0 || k <= 0 || n <= 0) {
    throw std::invalid_argument("estimate_gemm: dimensions must be positive");
  }
  if (spike_density < 0.0 || spike_density > 1.0) {
    throw std::invalid_argument("estimate_gemm: bad spike density");
  }
  GemmCost c;
  const int k_tiles = (padded_k(k, array) + array.rows - 1) / array.rows;
  for (int n0 = 0; n0 < n; n0 += array.cols) {
    const int width = std::min(array.cols, n - n0);
    for (int kt = 0; kt < k_tiles; ++kt) {
      c.cycles += static_cast<std::uint64_t>(m) + array.rows + width - 1;
      ++c.tiles;
    }
  }
  c.latency_us = static_cast<double>(c.cycles) / (cfg.clock_ghz * 1e3);
  const double adds =
      spike_density * static_cast<double>(m) * k * n;
  const double hops =
      static_cast<double>(c.cycles) * array.rows * array.cols * 0.5;
  c.energy_nj = (adds * cfg.energy_per_add_pj + hops * cfg.energy_per_hop_pj) *
                1e-3;
  const double busy = static_cast<double>(m) * k * std::min(n, array.cols);
  const double capacity = static_cast<double>(c.cycles) *
                          array.rows * std::min(n, array.cols);
  c.utilization = capacity > 0.0 ? busy / capacity : 0.0;
  if (c.utilization > 1.0) c.utilization = 1.0;
  return c;
}

GemmCost estimate_reexecution(const GemmCost& base, int redundancy) {
  if (redundancy < 1) {
    throw std::invalid_argument("estimate_reexecution: redundancy >= 1");
  }
  GemmCost c = base;
  c.cycles *= static_cast<std::uint64_t>(redundancy);
  c.tiles *= static_cast<std::uint64_t>(redundancy);
  c.latency_us *= redundancy;
  c.energy_nj *= redundancy;
  return c;
}

}  // namespace falvolt::systolic
