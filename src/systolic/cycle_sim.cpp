#include "systolic/cycle_sim.h"

#include <stdexcept>

namespace falvolt::systolic {

SystolicArraySim::SystolicArraySim(const ArrayConfig& cfg,
                                   const fault::FaultMap* map,
                                   bool bypass_faulty)
    : cfg_(cfg),
      map_(map),
      bypass_faulty_(bypass_faulty),
      pes_(static_cast<std::size_t>(cfg.rows) * cfg.cols) {
  if (map_ && (map_->rows() != cfg.rows || map_->cols() != cfg.cols)) {
    throw std::invalid_argument(
        "SystolicArraySim: fault map does not match array dimensions");
  }
  if (map_) {
    for (const auto& f : map_->faults()) {
      ProcessingElement& pe =
          pes_[static_cast<std::size_t>(f.row) * cfg_.cols + f.col];
      pe.set_stuck_bits(f.bits);
      pe.set_bypassed(bypass_faulty_);
    }
  }
}

void SystolicArraySim::run_tile(const tensor::Tensor& a,
                                const tensor::Tensor& w, int k0, int n0,
                                int width, std::vector<std::int32_t>& psums_in,
                                CycleStats& stats) {
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int rows = cfg_.rows;
  const fx::FixedFormat& fmt = cfg_.format;

  // Load weights of this tile (zero for logical rows beyond K).
  for (int r = 0; r < rows; ++r) {
    const int kk = k0 + r;
    for (int c = 0; c < width; ++c) {
      ProcessingElement& pe =
          pes_[static_cast<std::size_t>(r) * cfg_.cols + c];
      pe.load_weight(kk < k ? fmt.quantize(w.at2(kk, n0 + c)) : 0);
    }
  }

  // Register state: spikes move right, psums move down.
  std::vector<std::uint8_t> a_reg(static_cast<std::size_t>(rows) * width, 0);
  std::vector<std::int32_t> p_reg(static_cast<std::size_t>(rows) * width, 0);
  std::vector<std::uint8_t> a_next(a_reg.size());
  std::vector<std::int32_t> p_next(p_reg.size());

  // Vector i's spike for row r enters at cycle i + r; its psum for column
  // c exits the bottom row at the end of cycle i + (rows - 1) + c.
  const int total_cycles = m + rows + width - 1;
  std::vector<std::int32_t> psums_out(
      static_cast<std::size_t>(m) * width, 0);

  for (int t = 0; t < total_cycles; ++t) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < width; ++c) {
        const std::size_t idx = static_cast<std::size_t>(r) * width + c;
        // Spike arriving from the left (edge input is skewed by r).
        std::uint8_t spike = 0;
        if (c == 0) {
          const int i = t - r;
          if (i >= 0 && i < m) {
            const float av = a.at2(i, k0 + r < k ? k0 + r : 0);
            const float raw = (k0 + r < k) ? av : 0.0f;
            if (raw != 0.0f && raw != 1.0f) {
              throw std::invalid_argument(
                  "SystolicArraySim: inputs must be binary spikes");
            }
            spike = raw == 1.0f ? 1 : 0;
          }
        } else {
          spike = a_reg[idx - 1];
        }
        // Psum arriving from above; row 0 takes the previous K-tile's
        // psum for this column, skewed by c.
        std::int32_t psum_in = 0;
        if (r == 0) {
          const int i = t - c;
          if (i >= 0 && i < m) {
            psum_in = psums_in[static_cast<std::size_t>(i) * width + c];
          }
        } else {
          psum_in = p_reg[idx - static_cast<std::size_t>(width)];
        }
        const ProcessingElement& pe =
            pes_[static_cast<std::size_t>(r) * cfg_.cols + c];
        p_next[idx] = pe.step(spike == 1, psum_in, fmt);
        a_next[idx] = spike;
        if (spike && !pe.bypassed()) ++stats.accumulates;
      }
    }
    a_reg.swap(a_next);
    p_reg.swap(p_next);
    ++stats.cycles;
    // Collect bottom-row outputs: vector i's column c psum is in the
    // bottom register at the end of cycle i + rows - 1 + c.
    for (int c = 0; c < width; ++c) {
      const int i = t - (rows - 1) - c;
      if (i >= 0 && i < m) {
        psums_out[static_cast<std::size_t>(i) * width + c] =
            p_reg[static_cast<std::size_t>(rows - 1) * width + c];
      }
    }
  }
  psums_in.swap(psums_out);
  ++stats.tiles;
}

tensor::Tensor SystolicArraySim::matmul(const tensor::Tensor& a,
                                        const tensor::Tensor& w,
                                        CycleStats* stats) {
  if (a.rank() != 2 || w.rank() != 2 || a.dim(1) != w.dim(0)) {
    throw std::invalid_argument("SystolicArraySim::matmul: bad shapes");
  }
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = w.dim(1);
  CycleStats local;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 1.0f) ++local.spikes_in;
  }

  tensor::Tensor c({m, n});
  const int k_tiles = (padded_k(k, cfg_) + cfg_.rows - 1) / cfg_.rows;
  for (int n0 = 0; n0 < n; n0 += cfg_.cols) {
    const int width = std::min(cfg_.cols, n - n0);
    std::vector<std::int32_t> psums(
        static_cast<std::size_t>(m) * width, 0);
    for (int kt = 0; kt < k_tiles; ++kt) {
      run_tile(a, w, kt * cfg_.rows, n0, width, psums, local);
    }
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < width; ++j) {
        c.at2(i, n0 + j) = static_cast<float>(cfg_.format.dequantize(
            psums[static_cast<std::size_t>(i) * width + j]));
      }
    }
  }
  if (stats) *stats = local;
  return c;
}

}  // namespace falvolt::systolic
