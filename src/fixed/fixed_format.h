#pragma once
// Fixed-point number format used by the systolic-array PE model.
//
// The paper injects stuck-at faults into the *output bits of the PE
// accumulator*, so the accumulator must be modeled at the bit level. A
// FixedFormat describes a signed two's-complement Q(total-frac-1).frac
// value stored in the low `total_bits` of an int32_t, sign-extended to the
// full word. The default accelerator format is Q8.8 (16-bit); Q16.16
// (32-bit) is supported and tested.

#include <cstdint>
#include <string>

namespace falvolt::fx {

/// Signed two's-complement fixed-point format.
///
/// Raw values are canonical: stored sign-extended in int32_t, with the
/// numeric range [min_raw(), max_raw()]. All arithmetic saturates — a
/// hardware accumulator clamps rather than wrapping, and saturation keeps
/// fault-free quantized inference close to float inference.
class FixedFormat {
 public:
  /// @param total_bits word width, in [2, 32]
  /// @param frac_bits  fractional bits, in [0, total_bits - 1]
  FixedFormat(int total_bits, int frac_bits);

  int total_bits() const { return total_bits_; }
  int frac_bits() const { return frac_bits_; }
  int int_bits() const { return total_bits_ - frac_bits_ - 1; }

  /// Largest representable raw value: 2^(total-1) - 1.
  std::int32_t max_raw() const { return max_raw_; }
  /// Smallest representable raw value: -2^(total-1).
  std::int32_t min_raw() const { return min_raw_; }

  /// Value of one least-significant bit.
  double resolution() const { return 1.0 / static_cast<double>(scale_); }
  /// Largest representable real value.
  double max_value() const { return dequantize(max_raw_); }
  /// Smallest (most negative) representable real value.
  double min_value() const { return dequantize(min_raw_); }

  /// Real -> raw with round-to-nearest and saturation.
  std::int32_t quantize(double v) const;

  /// Raw -> real.
  double dequantize(std::int32_t raw) const {
    return static_cast<double>(raw) / static_cast<double>(scale_);
  }

  /// Clamp a wide intermediate into the representable raw range.
  std::int32_t saturate(std::int64_t wide) const;

  /// Saturating raw addition (the PE accumulate step).
  std::int32_t add(std::int32_t a, std::int32_t b) const {
    return saturate(static_cast<std::int64_t>(a) +
                    static_cast<std::int64_t>(b));
  }

  /// Saturating raw subtraction (signed-weight subtract path in the PE).
  std::int32_t sub(std::int32_t a, std::int32_t b) const {
    return saturate(static_cast<std::int64_t>(a) -
                    static_cast<std::int64_t>(b));
  }

  /// Saturating fixed-point multiply with round-to-nearest.
  /// Used only for the real-valued spike-encoder inputs (see DESIGN.md);
  /// binary-spike layers never multiply.
  std::int32_t mul(std::int32_t a, std::int32_t b) const;

  /// Overflow-headroom proof used by the faulty-GEMM fast path: a chain
  /// of saturating adds starting from 0 equals plain integer addition
  /// whenever the sum of absolute contributions cannot leave the raw
  /// range — every intermediate partial sum is then bounded by `abs_sum`
  /// in magnitude, so no step saturates. (For a nonzero starting value,
  /// pass |start| + abs_sum.)
  bool saturation_free(std::int64_t abs_sum) const {
    return abs_sum <= static_cast<std::int64_t>(max_raw_);
  }

  /// Sign-extend the low `total_bits` of `bits` into a canonical raw value.
  std::int32_t sign_extend(std::uint32_t bits) const;

  /// Truncate a raw value to its low `total_bits` bit pattern.
  std::uint32_t to_bits(std::int32_t raw) const {
    return static_cast<std::uint32_t>(raw) & word_mask_;
  }

  /// e.g. "Q8.8 (16-bit)".
  std::string to_string() const;

  bool operator==(const FixedFormat& o) const {
    return total_bits_ == o.total_bits_ && frac_bits_ == o.frac_bits_;
  }

  /// Accelerator default: Q8.8, 16-bit word.
  static FixedFormat q8_8() { return FixedFormat(16, 8); }
  /// Wide mode: Q16.16, 32-bit word (approx. float).
  static FixedFormat q16_16() { return FixedFormat(32, 16); }

 private:
  int total_bits_;
  int frac_bits_;
  std::int64_t scale_;  // 2^frac_bits
  std::int32_t max_raw_;
  std::int32_t min_raw_;
  std::uint32_t word_mask_;
  std::uint32_t sign_bit_;
};

}  // namespace falvolt::fx
