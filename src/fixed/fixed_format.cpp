#include "fixed/fixed_format.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace falvolt::fx {

FixedFormat::FixedFormat(int total_bits, int frac_bits)
    : total_bits_(total_bits), frac_bits_(frac_bits) {
  if (total_bits < 2 || total_bits > 32) {
    throw std::invalid_argument("FixedFormat: total_bits must be in [2, 32]");
  }
  if (frac_bits < 0 || frac_bits > total_bits - 1) {
    throw std::invalid_argument(
        "FixedFormat: frac_bits must be in [0, total_bits - 1]");
  }
  scale_ = std::int64_t{1} << frac_bits;
  const std::int64_t half_range = std::int64_t{1} << (total_bits - 1);
  max_raw_ = static_cast<std::int32_t>(half_range - 1);
  min_raw_ = static_cast<std::int32_t>(-half_range);
  word_mask_ = total_bits == 32 ? 0xffffffffu
                                : ((std::uint32_t{1} << total_bits) - 1);
  sign_bit_ = std::uint32_t{1} << (total_bits - 1);
}

std::int32_t FixedFormat::quantize(double v) const {
  if (std::isnan(v)) return 0;
  const double scaled = v * static_cast<double>(scale_);
  // llround saturates badly on overflow -> clamp in double space first.
  const double lo = static_cast<double>(min_raw_);
  const double hi = static_cast<double>(max_raw_);
  if (scaled <= lo) return min_raw_;
  if (scaled >= hi) return max_raw_;
  return static_cast<std::int32_t>(std::llround(scaled));
}

std::int32_t FixedFormat::saturate(std::int64_t wide) const {
  if (wide > max_raw_) return max_raw_;
  if (wide < min_raw_) return min_raw_;
  return static_cast<std::int32_t>(wide);
}

std::int32_t FixedFormat::mul(std::int32_t a, std::int32_t b) const {
  const std::int64_t prod = static_cast<std::int64_t>(a) * b;
  // Round to nearest before dropping frac_bits.
  const std::int64_t rounded = prod + (scale_ >> 1);
  return saturate(rounded >> frac_bits_);
}

std::int32_t FixedFormat::sign_extend(std::uint32_t bits) const {
  bits &= word_mask_;
  if (total_bits_ == 32) return static_cast<std::int32_t>(bits);
  if (bits & sign_bit_) {
    return static_cast<std::int32_t>(bits | ~word_mask_);
  }
  return static_cast<std::int32_t>(bits);
}

std::string FixedFormat::to_string() const {
  std::ostringstream os;
  os << "Q" << int_bits() << "." << frac_bits_ << " (" << total_bits_
     << "-bit)";
  return os.str();
}

}  // namespace falvolt::fx
