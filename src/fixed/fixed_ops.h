#pragma once
// Bulk fixed-point conversions between float tensors/buffers and raw
// fixed-point vectors, used when staging weights and activations into the
// systolic-array simulators.

#include <cstdint>
#include <vector>

#include "fixed/fixed_format.h"

namespace falvolt::fx {

/// Quantize a float buffer into raw fixed-point values.
std::vector<std::int32_t> quantize_buffer(const float* data, std::size_t n,
                                          const FixedFormat& fmt);

/// Dequantize raw fixed-point values into a float buffer (out must hold n).
void dequantize_buffer(const std::int32_t* raw, std::size_t n,
                       const FixedFormat& fmt, float* out);

/// Worst-case absolute quantization error for a buffer (reported by tests
/// and the cost model; equals <= 0.5 LSB unless saturation occurred).
double max_quantization_error(const float* data, std::size_t n,
                              const FixedFormat& fmt);

}  // namespace falvolt::fx
