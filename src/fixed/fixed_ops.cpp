#include "fixed/fixed_ops.h"

#include <cmath>

namespace falvolt::fx {

std::vector<std::int32_t> quantize_buffer(const float* data, std::size_t n,
                                          const FixedFormat& fmt) {
  std::vector<std::int32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = fmt.quantize(data[i]);
  return out;
}

void dequantize_buffer(const std::int32_t* raw, std::size_t n,
                       const FixedFormat& fmt, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(fmt.dequantize(raw[i]));
  }
}

double max_quantization_error(const float* data, std::size_t n,
                              const FixedFormat& fmt) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double back = fmt.dequantize(fmt.quantize(data[i]));
    worst = std::max(worst, std::fabs(back - static_cast<double>(data[i])));
  }
  return worst;
}

}  // namespace falvolt::fx
