#include "fixed/stuck_bits.h"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace falvolt::fx {

namespace {
void check_bit(int bit) {
  if (bit < 0 || bit > 31) {
    throw std::invalid_argument("StuckBits: bit must be in [0, 31]");
  }
}
}  // namespace

void StuckBits::set(int bit, StuckType type) {
  check_bit(bit);
  const std::uint32_t m = std::uint32_t{1} << bit;
  if (type == StuckType::kStuckAt0) {
    if (sa1_mask & m) {
      throw std::invalid_argument("StuckBits: bit already stuck at 1");
    }
    sa0_mask |= m;
  } else {
    if (sa0_mask & m) {
      throw std::invalid_argument("StuckBits: bit already stuck at 0");
    }
    sa1_mask |= m;
  }
}

void StuckBits::clear(int bit) {
  check_bit(bit);
  const std::uint32_t m = ~(std::uint32_t{1} << bit);
  sa0_mask &= m;
  sa1_mask &= m;
}

bool StuckBits::is_stuck(int bit) const {
  check_bit(bit);
  const std::uint32_t m = std::uint32_t{1} << bit;
  return ((sa0_mask | sa1_mask) & m) != 0;
}

int StuckBits::count() const {
  return std::popcount(sa0_mask) + std::popcount(sa1_mask);
}

std::int32_t StuckBits::apply(std::int32_t raw, const FixedFormat& fmt) const {
  if (none()) return raw;
  std::uint32_t bits = fmt.to_bits(raw);
  bits &= ~sa0_mask;
  bits |= (sa1_mask & fmt.to_bits(-1));  // only bits that exist in the word
  return fmt.sign_extend(bits);
}

std::string StuckBits::to_string() const {
  if (none()) return "none";
  std::ostringstream os;
  bool first = true;
  for (int b = 31; b >= 0; --b) {
    const std::uint32_t m = std::uint32_t{1} << b;
    if (sa1_mask & m) {
      os << (first ? "" : ",") << "sa1@" << b;
      first = false;
    }
    if (sa0_mask & m) {
      os << (first ? "" : ",") << "sa0@" << b;
      first = false;
    }
  }
  return os.str();
}

}  // namespace falvolt::fx
