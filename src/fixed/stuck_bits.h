#pragma once
// Stuck-at fault application on fixed-point words.
//
// A stuck-at-0 (sa0) fault forces an output bit of the PE accumulator to
// read 0 regardless of the computed value; stuck-at-1 (sa1) forces it to 1.
// Faults are permanent: they corrupt the accumulator output after *every*
// accumulation step, which is what makes them so much more damaging than
// transient upsets.

#include <cstdint>
#include <string>

#include "fixed/fixed_format.h"

namespace falvolt::fx {

/// Type of a single stuck-at fault.
enum class StuckType : std::uint8_t { kStuckAt0 = 0, kStuckAt1 = 1 };

/// The set of stuck bits of one PE's accumulator output.
///
/// Encoded as two masks over the word's bit positions: `sa0_mask` bits are
/// forced to 0, `sa1_mask` bits are forced to 1. A bit present in both
/// masks is invalid (a physical node cannot be stuck at both levels).
struct StuckBits {
  std::uint32_t sa0_mask = 0;
  std::uint32_t sa1_mask = 0;

  /// No faults at all?
  bool none() const { return sa0_mask == 0 && sa1_mask == 0; }

  /// Add a single stuck bit. Throws if `bit` is already stuck at the
  /// opposite level or out of range for a 32-bit word.
  void set(int bit, StuckType type);

  /// Remove any fault on `bit`.
  void clear(int bit);

  /// Is `bit` stuck (at either level)?
  bool is_stuck(int bit) const;

  /// Number of stuck bits.
  int count() const;

  /// Apply the stuck bits to a raw fixed-point value: force the masked
  /// bits, then sign-extend back to canonical raw form. Masks outside the
  /// format's word are ignored (they model nodes that don't exist).
  std::int32_t apply(std::int32_t raw, const FixedFormat& fmt) const;

  /// Human-readable, e.g. "sa1@15,sa0@3".
  std::string to_string() const;

  bool operator==(const StuckBits& o) const {
    return sa0_mask == o.sa0_mask && sa1_mask == o.sa1_mask;
  }
};

}  // namespace falvolt::fx
